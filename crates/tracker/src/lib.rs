//! # seacma-tracker — incremental campaign tracking across epochs
//!
//! The paper *discovers* SE campaigns by batch-clustering landing
//! screenshots (§3.3) and then *tracks* them over months of crawling (§5).
//! Re-clustering the whole corpus at every epoch is O(total) per update;
//! this crate maintains campaign state **online**:
//!
//! - [`IncrementalClusterer`] — streaming DBSCAN over the insert-capable
//!   [`HammingIndex`](seacma_vision::index::HammingIndex), byte-identical
//!   to batch [`cluster_screenshots`](seacma_vision::cluster::cluster_screenshots)
//!   at every prefix (the property `tracker_scaling` gates before timing);
//! - [`CampaignLedger`] — stable campaign identities plus a life journal:
//!   birth, growth, e2LD rotation, θc promotion/demotion, dormancy, death,
//!   reactivation and merges;
//! - [`CampaignTracker`] — the epoch-driven facade the pipeline's `track`
//!   phase drives, with byte-identical JSON snapshot/resume.

#![deny(missing_docs)]

pub mod incremental;
pub mod ledger;
pub mod tracker;

pub use incremental::{ClustererState, IncrementalClusterer};
pub use ledger::{
    CampaignEvent, CampaignLedger, CampaignRecord, LedgerConfig, LedgerEvent, LedgerState,
    LifeState, ObservedCluster, RecordState,
};
pub use tracker::{CampaignTracker, EpochSummary, TrackerConfig};
