//! The epoch-driven campaign tracker: streaming clusterer + lifecycle
//! ledger behind one ingest/end-epoch API, with byte-identical
//! snapshot/resume.

use std::collections::BTreeMap;

use seacma_util::json::{self, JsonError};
use seacma_util::impl_json_struct;
use seacma_util::sym::{SharedArena, Sym};
use seacma_vision::cluster::{ClusterParams, ScreenshotClusters, ScreenshotPoint};
use seacma_vision::dbscan::Label;
use seacma_vision::dhash::Dhash;
use seacma_vision::index::HammingIndex;

use crate::incremental::{ClustererState, IncrementalClusterer};
use crate::ledger::{CampaignLedger, LedgerConfig, LedgerEvent, LedgerState, ObservedCluster};

/// Tracker parameters: the clustering knobs (shared with the batch
/// pipeline — exactness requires identical values) plus the ledger's
/// dormancy windows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrackerConfig {
    /// DBSCAN + θc parameters, as in the batch clustering step.
    pub params: ClusterParams,
    /// Dormancy/death thresholds.
    pub ledger: LedgerConfig,
}

/// What one closed epoch looked like: the live cluster snapshot plus the
/// ledger events the observation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSummary {
    /// The epoch index (0-based, assigned in close order).
    pub epoch: u32,
    /// Points ingested during the epoch.
    pub ingested: u32,
    /// Cluster snapshot at the boundary — byte-identical to batch
    /// `cluster_screenshots` over everything ingested so far.
    pub clusters: ScreenshotClusters,
    /// Lifecycle events journaled at the boundary.
    pub events: Vec<LedgerEvent>,
}

/// Online campaign tracker (see the crate docs for the architecture).
///
/// ```
/// use seacma_tracker::{CampaignTracker, TrackerConfig};
/// use seacma_vision::cluster::ScreenshotPoint;
/// use seacma_vision::dhash::Dhash;
///
/// let mut tracker = CampaignTracker::new(TrackerConfig::default());
/// for i in 0..12u32 {
///     let p = ScreenshotPoint::new(Dhash(0xFACE ^ (1 << (i % 3))), format!("evil{}.club", i % 6));
///     tracker.ingest(p);
/// }
/// let summary = tracker.end_epoch();
/// assert_eq!(summary.clusters.campaigns.len(), 1);
/// assert_eq!(tracker.ledger().campaigns().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignTracker {
    config: TrackerConfig,
    clusterer: IncrementalClusterer,
    /// Epoch stamp per unique point: the epoch during which the point
    /// first arrived. Parallel to the clusterer's dhash/e2LD columns.
    first_epoch: Vec<u32>,
    ledger: CampaignLedger,
    epoch: u32,
    epoch_ingested: u32,
}

impl CampaignTracker {
    /// A fresh tracker with a private symbol arena.
    pub fn new(config: TrackerConfig) -> Self {
        Self::with_arena(config, SharedArena::new())
    }

    /// A fresh tracker interning e2LDs into `arena` — the pipeline hands
    /// its world arena in so crawl-record symbols flow straight into
    /// [`CampaignTracker::ingest_sym`] without string round-trips.
    pub fn with_arena(config: TrackerConfig, arena: SharedArena) -> Self {
        Self {
            config,
            clusterer: IncrementalClusterer::with_arena(config.params, arena),
            first_epoch: Vec::new(),
            ledger: CampaignLedger::new(config.ledger),
            epoch: 0,
            epoch_ingested: 0,
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// The next epoch to be closed (number of closed epochs so far).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Total points ingested since birth (including duplicates).
    pub fn points_ingested(&self) -> usize {
        self.clusterer.len()
    }

    /// The lifecycle ledger.
    pub fn ledger(&self) -> &CampaignLedger {
        &self.ledger
    }

    /// The distinct `(dhash, e2LD)` points seen so far, in arrival order —
    /// the clustering domain the ledger's
    /// [`assignments`](CampaignLedger::assignments) index into.
    /// Materialized from the hot columns on demand; the daemon's snapshot
    /// path uses the column accessors ([`CampaignTracker::dhashes`],
    /// [`CampaignTracker::e2ld_syms`], [`CampaignTracker::hamming_index`])
    /// instead.
    pub fn unique_points(&self) -> Vec<ScreenshotPoint> {
        self.clusterer.unique_points()
    }

    /// Number of distinct `(dhash, e2LD)` pairs seen so far.
    pub fn unique_len(&self) -> usize {
        self.clusterer.unique_len()
    }

    /// The arena every e2LD symbol in this tracker resolves against.
    pub fn arena(&self) -> &SharedArena {
        self.clusterer.arena()
    }

    /// The contiguous dhash column, one entry per unique point.
    pub fn dhashes(&self) -> &[Dhash] {
        self.clusterer.dhashes()
    }

    /// The e2LD symbol column, parallel to [`CampaignTracker::dhashes`].
    pub fn e2ld_syms(&self) -> &[Sym] {
        self.clusterer.e2ld_syms()
    }

    /// The epoch during which each unique point first arrived — a third
    /// parallel column, stamped at ingest time.
    pub fn first_epochs(&self) -> &[u32] {
        &self.first_epoch
    }

    /// The live Hamming index over the unique points (cloneable for
    /// snapshot publication — no rebuild needed).
    pub fn hamming_index(&self) -> &HammingIndex {
        self.clusterer.hamming_index()
    }

    /// Feeds one screenshot point into the current epoch.
    pub fn ingest(&mut self, point: ScreenshotPoint) {
        if self.clusterer.insert_ref(point.dhash, &point.e2ld).is_some() {
            self.first_epoch.push(self.epoch);
        }
        self.epoch_ingested += 1;
    }

    /// Feeds one pre-interned point into the current epoch — the
    /// zero-string hot path. `e2ld` must come from this tracker's arena
    /// ([`CampaignTracker::arena`]).
    pub fn ingest_sym(&mut self, dhash: Dhash, e2ld: Sym) {
        if self.clusterer.insert_sym(dhash, e2ld).is_some() {
            self.first_epoch.push(self.epoch);
        }
        self.epoch_ingested += 1;
    }

    /// Feeds a batch of points into the current epoch.
    pub fn ingest_all(&mut self, points: impl IntoIterator<Item = ScreenshotPoint>) {
        for p in points {
            self.ingest(p);
        }
    }

    /// Closes the current epoch: derives the exact cluster snapshot,
    /// journals lifecycle events against the previous epoch, and advances
    /// the epoch counter.
    pub fn end_epoch(&mut self) -> EpochSummary {
        let labels = self.clusterer.labels();
        let clusters = self.clusterer.assemble(&labels);
        let observed = observed_clusters(&self.clusterer, &labels);
        let arena = self.clusterer.arena().read();
        let events = self.ledger.observe(
            self.epoch,
            &observed,
            self.clusterer.unique_len(),
            self.config.params.theta_c,
            &arena,
        );
        drop(arena);
        let summary =
            EpochSummary { epoch: self.epoch, ingested: self.epoch_ingested, clusters, events };
        self.epoch += 1;
        self.epoch_ingested = 0;
        summary
    }

    /// The live cluster snapshot — byte-identical to batch
    /// [`cluster_screenshots`](seacma_vision::cluster::cluster_screenshots)
    /// over everything ingested so far, in ingestion order.
    pub fn clusters(&self) -> ScreenshotClusters {
        self.clusterer.clusters()
    }

    /// Serializes the full tracker state (clusterer + ledger + epoch
    /// counters) to canonical JSON. Snapshots of equal trackers are
    /// byte-identical, and [`CampaignTracker::from_json`] resumes a run
    /// that is byte-identical to never having snapshotted.
    pub fn to_json(&self) -> String {
        json::to_string(&TrackerState {
            config: self.config,
            clusterer: self.clusterer.to_state(),
            first_epoch: self.first_epoch.clone(),
            ledger: self.ledger.to_state(&self.clusterer.arena().read()),
            epoch: self.epoch,
            epoch_ingested: self.epoch_ingested,
        })
    }

    /// Restores a tracker from a [`CampaignTracker::to_json`] snapshot.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let state: TrackerState = json::from_str(text)?;
        let clusterer = IncrementalClusterer::from_state(state.clusterer);
        // The ledger re-interns its domains against the clusterer's
        // just-restored arena — every campaign domain is an e2LD the
        // clusterer already interned, so symbol values land exactly where
        // a never-snapshotted run put them.
        let ledger = CampaignLedger::from_state(state.ledger, clusterer.arena());
        Ok(Self {
            config: state.config,
            clusterer,
            first_epoch: state.first_epoch,
            ledger,
            epoch: state.epoch,
            epoch_ingested: state.epoch_ingested,
        })
    }
}

/// Groups the label vector into the ledger's observation format.
///
/// Domains stay symbols end to end: each cluster's set is deduplicated and
/// string-ordered through a `BTreeMap<&str, Sym>` keyed by the arena's
/// resolved slices, so closing an epoch allocates no domain strings at all
/// — the win the e2e allocation baseline locks in.
fn observed_clusters(
    clusterer: &IncrementalClusterer,
    labels: &[Label],
) -> Vec<ObservedCluster> {
    let n_clusters = labels.iter().filter_map(|l| l.cluster_id()).max().map_or(0, |m| m + 1);
    let mut out: Vec<ObservedCluster> = (0..n_clusters)
        .map(|_| ObservedCluster { members: Vec::new(), weight: 0, domains: Vec::new() })
        .collect();
    let arena = clusterer.arena().read();
    let syms = clusterer.e2ld_syms();
    let mut domain_sets: Vec<BTreeMap<&str, Sym>> = vec![BTreeMap::new(); n_clusters];
    for (u, l) in labels.iter().enumerate() {
        if let Some(id) = l.cluster_id() {
            out[id].members.push(u as u32);
            out[id].weight += clusterer.originals()[u].len() as u32;
            domain_sets[id].insert(arena.resolve(syms[u]), syms[u]);
        }
    }
    for (o, ds) in out.iter_mut().zip(domain_sets) {
        o.domains = ds.into_values().collect();
    }
    out
}

/// Serialized form of [`CampaignTracker`].
#[derive(Debug, Clone, PartialEq)]
struct TrackerState {
    config: TrackerConfig,
    clusterer: ClustererState,
    first_epoch: Vec<u32>,
    ledger: LedgerState,
    epoch: u32,
    epoch_ingested: u32,
}

impl_json_struct!(TrackerConfig { params, ledger });
impl_json_struct!(EpochSummary { epoch, ingested, clusters, events });
impl_json_struct!(TrackerState { config, clusterer, first_epoch, ledger, epoch, epoch_ingested });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{CampaignEvent, LifeState};
    use seacma_vision::cluster::cluster_screenshots;
    use seacma_vision::dhash::Dhash;

    /// `count` near-duplicates of `base` across `n_domains` domains.
    fn campaign_points(base: u128, count: usize, n_domains: usize, tag: &str) -> Vec<ScreenshotPoint> {
        (0..count)
            .map(|i| {
                ScreenshotPoint::new(
                    Dhash(base ^ (1u128 << (i % 3))),
                    format!("{tag}{}.xyz", i % n_domains),
                )
            })
            .collect()
    }

    #[test]
    fn epoch_snapshots_match_batch_prefixes() {
        let mut all: Vec<ScreenshotPoint> = Vec::new();
        let mut tracker = CampaignTracker::new(TrackerConfig::default());
        let epochs = [
            campaign_points(0xAAAA_BBBB, 10, 6, "a"),
            campaign_points(u128::MAX << 40, 8, 5, "b"),
            campaign_points(0xAAAA_BBBB, 6, 9, "a"),
        ];
        for batch in epochs {
            all.extend(batch.iter().cloned());
            tracker.ingest_all(batch);
            let summary = tracker.end_epoch();
            let batch_clusters = cluster_screenshots(&all, TrackerConfig::default().params);
            assert_eq!(summary.clusters, batch_clusters, "epoch {}", summary.epoch);
        }
        assert_eq!(tracker.epoch(), 3);
        assert_eq!(tracker.points_ingested(), 24);
    }

    #[test]
    fn lifecycle_flows_through_epochs() {
        let config = TrackerConfig {
            ledger: LedgerConfig { quiet_window: 1, death_window: 2 },
            ..Default::default()
        };
        let mut tracker = CampaignTracker::new(config);
        tracker.ingest_all(campaign_points(0xFACE, 12, 6, "evil"));
        let s0 = tracker.end_epoch();
        assert!(s0.events.iter().any(|e| matches!(e.event, CampaignEvent::Born { .. })));
        assert_eq!(tracker.ledger().campaigns().count(), 1);

        // Quiet epoch: dormancy after quiet_window = 1.
        let s1 = tracker.end_epoch();
        assert!(s1.events.iter().any(|e| matches!(e.event, CampaignEvent::WentDormant { .. })));
        // Another quiet epoch: death after death_window = 2.
        let s2 = tracker.end_epoch();
        assert!(s2.events.iter().any(|e| matches!(e.event, CampaignEvent::Died { .. })));
        assert_eq!(tracker.ledger().record(0).state, LifeState::Dead);

        // Rotation resumes: reactivation plus DomainRotated events.
        tracker.ingest_all(campaign_points(0xFACE, 8, 8, "evil"));
        let s3 = tracker.end_epoch();
        assert!(s3.events.iter().any(|e| matches!(e.event, CampaignEvent::Reactivated { .. })));
        assert!(s3
            .events
            .iter()
            .any(|e| matches!(&e.event, CampaignEvent::DomainRotated { domain, .. } if domain == "evil7.xyz")));
    }

    #[test]
    fn snapshot_resume_is_byte_identical() {
        let mut tracker = CampaignTracker::new(TrackerConfig::default());
        tracker.ingest_all(campaign_points(0xBEEF, 9, 6, "x"));
        tracker.end_epoch();
        tracker.ingest_all(campaign_points(0x1234, 7, 3, "y"));

        let snap = tracker.to_json();
        let mut resumed = CampaignTracker::from_json(&snap).expect("snapshot parses");
        assert_eq!(resumed.to_json(), snap, "round-trip is stable");

        // Continue both runs identically: mid-epoch state included.
        let tail = campaign_points(0xBEEF, 5, 9, "x");
        tracker.ingest_all(tail.clone());
        resumed.ingest_all(tail);
        tracker.end_epoch();
        resumed.end_epoch();
        assert_eq!(resumed.to_json(), tracker.to_json());
        assert_eq!(resumed.clusters(), tracker.clusters());
    }

    #[test]
    fn ingest_sym_matches_ingest_and_stamps_epochs() {
        let arena = seacma_util::sym::SharedArena::new();
        arena.intern("unrelated-preexisting.example");
        let mut by_sym = CampaignTracker::with_arena(TrackerConfig::default(), arena.clone());
        let mut by_struct = CampaignTracker::new(TrackerConfig::default());
        let epochs = [
            campaign_points(0xD00D, 9, 4, "e"),
            campaign_points(0xD00D, 5, 7, "e"),
        ];
        for batch in &epochs {
            for p in batch {
                let sym = arena.intern(&p.e2ld);
                by_sym.ingest_sym(p.dhash, sym);
                by_struct.ingest(p.clone());
            }
            assert_eq!(by_sym.end_epoch(), by_struct.end_epoch());
        }
        // The serialized state resolves symbols, so it is arena-independent.
        assert_eq!(by_sym.to_json(), by_struct.to_json());
        // Epoch stamps: non-decreasing, bounded by the closing epoch, and
        // exactly one per unique point.
        let stamps = by_sym.first_epochs();
        assert_eq!(stamps.len(), by_sym.unique_len());
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
        assert!(stamps.iter().all(|&e| e < by_sym.epoch()));
        assert!(stamps.contains(&0) && stamps.contains(&1));
    }
}
