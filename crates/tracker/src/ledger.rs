//! Campaign lifecycle ledger: stable identities and life events across
//! epochs.
//!
//! The incremental clusterer answers "what are the clusters *now*"; the
//! ledger answers "which campaign is this, and what happened to it".
//! Cluster structure drifts as points arrive — components merge, borders
//! migrate, domain counts cross θc in both directions — so the ledger
//! assigns each campaign a stable numeric id at birth and re-identifies it
//! at every epoch boundary by **member overlap**: each previously-known id
//! votes for the current cluster holding most of its former members
//! (ties to the lower cluster index), a cluster inherits the smallest id
//! that chose it, and any other claimants are recorded as merged into it.
//! Insertion-only clustering never splits a component, so the former
//! members of an id stay together and the vote is decisive.
//!
//! Life state machine (see DESIGN.md §2e):
//!
//! ```text
//! Born ──▶ Active ──quiet ≥ quiet_window──▶ Dormant
//!            ▲                                │ │
//!            └────────── grew ◀───────────────┘ └─quiet ≥ death_window─▶ Dead
//!                                                              │
//!                                              grew ──▶ Active (reactivated)
//! Active/Dormant/Dead ──outvoted at re-identification──▶ Merged (terminal)
//! ```

use std::collections::BTreeMap;

use seacma_util::sym::{SharedArena, Sym, SymbolArena};
use seacma_util::{impl_json_enum, impl_json_struct};

/// Dormancy/death thresholds, in epochs without growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerConfig {
    /// Epochs without member growth before an `Active` campaign turns
    /// `Dormant`.
    pub quiet_window: u32,
    /// Epochs without member growth before a `Dormant` campaign is
    /// declared `Dead`. Must be ≥ `quiet_window` to be reachable.
    pub death_window: u32,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        Self { quiet_window: 2, death_window: 5 }
    }
}

/// Where a campaign is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifeState {
    /// Growing, or quiet for less than the quiet window.
    Active,
    /// No growth for `quiet_window` epochs; still tracked.
    Dormant,
    /// No growth for `death_window` epochs. Revived by any new member.
    Dead,
    /// Identity absorbed by another campaign (terminal).
    Merged,
}

/// One entry in a campaign's event journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignEvent {
    /// First observation of the cluster.
    Born {
        /// Epoch of first observation.
        epoch: u32,
        /// Screenshot count at birth.
        members: u32,
        /// Distinct e2LDs at birth.
        domains: u32,
    },
    /// Member count increased since the previous epoch.
    Grew {
        /// Epoch of the observation.
        epoch: u32,
        /// Members gained since the previous epoch.
        added: u32,
        /// Total members after growth.
        members: u32,
    },
    /// A new e2LD joined the campaign — the blacklist-evasion rotation
    /// signature the paper tracks (§5).
    DomainRotated {
        /// Epoch the domain first appeared.
        epoch: u32,
        /// The new effective second-level domain.
        domain: String,
    },
    /// Domain count crossed θc upward: the cluster is now a campaign.
    Promoted {
        /// Epoch of the crossing.
        epoch: u32,
        /// Distinct e2LDs after the crossing.
        domains: u32,
    },
    /// Domain count fell below θc (border points migrating to an older
    /// cluster can remove domains — see `incremental`).
    Demoted {
        /// Epoch of the crossing.
        epoch: u32,
        /// Distinct e2LDs after the crossing.
        domains: u32,
    },
    /// Quiet for `quiet_window` epochs.
    WentDormant {
        /// Epoch the threshold was crossed.
        epoch: u32,
    },
    /// Quiet for `death_window` epochs.
    Died {
        /// Epoch the threshold was crossed.
        epoch: u32,
    },
    /// Grew again after dormancy or death.
    Reactivated {
        /// Epoch growth resumed.
        epoch: u32,
    },
    /// Lost the re-identification vote to a smaller id (terminal).
    MergedInto {
        /// Epoch of the merge.
        epoch: u32,
        /// The surviving campaign id.
        into: u32,
    },
}

/// A tracked campaign: stable id, current shape, life state and journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRecord {
    /// Stable ledger id (index into the ledger's record table).
    pub id: u32,
    /// Epoch the campaign was first observed.
    pub birth_epoch: u32,
    /// Last epoch the member count grew.
    pub last_growth_epoch: u32,
    /// Screenshot count at the last observation.
    pub members: u32,
    /// Distinct e2LD symbols at the last observation, sorted by resolved
    /// string. Symbols, not strings: epoch close re-materializing every
    /// campaign's domain list was the tracker's last per-epoch string
    /// allocation — the ledger now serves `Sym`s straight from the
    /// clusterer's arena and resolves only at serialization time
    /// ([`CampaignLedger::to_state`]) or on a rotation event.
    pub domains: Vec<Sym>,
    /// Whether the domain count meets θc.
    pub campaign: bool,
    /// Current life state.
    pub state: LifeState,
    /// Everything that ever happened to this campaign, in epoch order.
    pub events: Vec<CampaignEvent>,
}

impl CampaignRecord {
    /// Observed lifetime in epochs: birth through the last epoch the
    /// campaign still grew, inclusive. This is the series the lifetime
    /// histograms in `seacma-report` bucket.
    ///
    /// ```
    /// use seacma_tracker::{CampaignRecord, LifeState};
    /// use seacma_util::sym::SymbolArena;
    ///
    /// let mut arena = SymbolArena::new();
    /// let r = CampaignRecord {
    ///     id: 0,
    ///     birth_epoch: 2,
    ///     last_growth_epoch: 5,
    ///     members: 9,
    ///     domains: vec![arena.intern("evil.club")],
    ///     campaign: false,
    ///     state: LifeState::Dormant,
    ///     events: Vec::new(),
    /// };
    /// assert_eq!(r.lifetime_epochs(), 4);
    /// ```
    pub fn lifetime_epochs(&self) -> u32 {
        self.last_growth_epoch - self.birth_epoch + 1
    }
}

/// A `(campaign id, event)` pair as returned from an epoch observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEvent {
    /// The campaign the event belongs to.
    pub id: u32,
    /// The event.
    pub event: CampaignEvent,
}

/// One cluster as seen at an epoch boundary — the ledger's input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedCluster {
    /// Unique-point indices of the cluster's members, ascending.
    pub members: Vec<u32>,
    /// Total screenshots (original multiplicity) across members.
    pub weight: u32,
    /// Distinct e2LD symbols, sorted by resolved string.
    pub domains: Vec<Sym>,
}

/// The campaign lifecycle ledger. Domains are arena symbols, so the
/// serialized form goes through [`CampaignLedger::to_state`] (which
/// resolves them — arena-independent by construction); see
/// [`CampaignTracker`](crate::tracker::CampaignTracker) for the
/// snapshot/resume entry points.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignLedger {
    config: LedgerConfig,
    /// All campaigns ever observed; `records[i].id == i`, never removed.
    records: Vec<CampaignRecord>,
    /// Ledger id each unique point belonged to at the last observation.
    assign: Vec<Option<u32>>,
}

impl CampaignLedger {
    /// An empty ledger.
    pub fn new(config: LedgerConfig) -> Self {
        Self { config, records: Vec::new(), assign: Vec::new() }
    }

    /// The dormancy thresholds.
    pub fn config(&self) -> LedgerConfig {
        self.config
    }

    /// Every campaign ever observed, in id order.
    pub fn records(&self) -> &[CampaignRecord] {
        &self.records
    }

    /// The record for ledger id `id`.
    pub fn record(&self, id: u32) -> &CampaignRecord {
        &self.records[id as usize]
    }

    /// Records with θc-qualifying domain counts that are not merged away.
    pub fn campaigns(&self) -> impl Iterator<Item = &CampaignRecord> {
        self.records.iter().filter(|r| r.campaign && r.state != LifeState::Merged)
    }

    /// The ledger id each unique point belonged to at the last closed
    /// epoch (`None` = noise). Indexed by the clusterer's unique-point
    /// order; its length is the unique count at the last observation, so
    /// points ingested since then are implicitly unassigned.
    ///
    /// This is the publication handle the reputation daemon snapshots:
    /// together with the unique points it fixes every dhash→campaign
    /// answer at an epoch boundary.
    pub fn assignments(&self) -> &[Option<u32>] {
        &self.assign
    }

    /// Closes an epoch: re-identifies `clusters` against the previous
    /// observation, journals every life event, and returns the events in
    /// deterministic order (cluster index order, merges before updates).
    ///
    /// `n_unique` is the clusterer's current unique-point count (members
    /// index into it); `theta_c` the campaign domain threshold; `arena`
    /// resolves the clusters' domain symbols — touched only when a
    /// rotation event needs its domain string, never on the steady path.
    pub fn observe(
        &mut self,
        epoch: u32,
        clusters: &[ObservedCluster],
        n_unique: usize,
        theta_c: usize,
        arena: &SymbolArena,
    ) -> Vec<LedgerEvent> {
        // Vote: each previously-known id backs the current cluster holding
        // most of its former members (ties to the lower cluster index).
        let mut votes: BTreeMap<u32, BTreeMap<usize, u32>> = BTreeMap::new();
        for (ci, c) in clusters.iter().enumerate() {
            for &u in &c.members {
                if let Some(p) = self.assign.get(u as usize).copied().flatten() {
                    *votes.entry(p).or_default().entry(ci).or_default() += 1;
                }
            }
        }
        // Claimant ids per cluster, ascending (BTreeMap iteration order).
        let mut claimants: Vec<Vec<u32>> = vec![Vec::new(); clusters.len()];
        for (&p, per_cluster) in &votes {
            let (&best_ci, _) = per_cluster
                .iter()
                .max_by_key(|&(&ci, &v)| (v, std::cmp::Reverse(ci)))
                .expect("id voted, so it has at least one cluster");
            claimants[best_ci].push(p);
        }

        let mut events: Vec<LedgerEvent> = Vec::new();
        let mut new_assign: Vec<Option<u32>> = vec![None; n_unique];
        for (ci, c) in clusters.iter().enumerate() {
            let id = match claimants[ci].first().copied() {
                Some(keep) => {
                    for &gone in &claimants[ci][1..] {
                        let ev = CampaignEvent::MergedInto { epoch, into: keep };
                        let rec = &mut self.records[gone as usize];
                        rec.state = LifeState::Merged;
                        rec.events.push(ev.clone());
                        events.push(LedgerEvent { id: gone, event: ev });
                    }
                    keep
                }
                None => {
                    // Never-seen members only: a birth.
                    let id = self.records.len() as u32;
                    let ev = CampaignEvent::Born {
                        epoch,
                        members: c.weight,
                        domains: c.domains.len() as u32,
                    };
                    self.records.push(CampaignRecord {
                        id,
                        birth_epoch: epoch,
                        last_growth_epoch: epoch,
                        members: c.weight,
                        domains: c.domains.clone(),
                        campaign: c.domains.len() >= theta_c,
                        state: LifeState::Active,
                        events: vec![ev.clone()],
                    });
                    events.push(LedgerEvent { id, event: ev });
                    for &u in &c.members {
                        new_assign[u as usize] = Some(id);
                    }
                    continue;
                }
            };

            let mut emitted: Vec<CampaignEvent> = Vec::new();
            let rec = &mut self.records[id as usize];
            // Linear scan, not binary search: symbols are sorted by their
            // *resolved* string, which `Sym` ordering does not reflect.
            // Domain lists are small (θc-scale), and symbol equality is an
            // integer compare — no strings materialize here.
            for &d in &c.domains {
                if !rec.domains.contains(&d) {
                    emitted.push(CampaignEvent::DomainRotated {
                        epoch,
                        domain: arena.resolve(d).to_string(),
                    });
                }
            }
            let qualifies = c.domains.len() >= theta_c;
            if qualifies && !rec.campaign {
                emitted.push(CampaignEvent::Promoted { epoch, domains: c.domains.len() as u32 });
            } else if !qualifies && rec.campaign {
                emitted.push(CampaignEvent::Demoted { epoch, domains: c.domains.len() as u32 });
            }
            if c.weight > rec.members {
                emitted.push(CampaignEvent::Grew {
                    epoch,
                    added: c.weight - rec.members,
                    members: c.weight,
                });
                if rec.state != LifeState::Active {
                    emitted.push(CampaignEvent::Reactivated { epoch });
                    rec.state = LifeState::Active;
                }
                rec.last_growth_epoch = epoch;
            } else {
                let quiet = epoch - rec.last_growth_epoch;
                match rec.state {
                    LifeState::Active if quiet >= self.config.quiet_window => {
                        emitted.push(CampaignEvent::WentDormant { epoch });
                        rec.state = LifeState::Dormant;
                    }
                    LifeState::Dormant if quiet >= self.config.death_window => {
                        emitted.push(CampaignEvent::Died { epoch });
                        rec.state = LifeState::Dead;
                    }
                    _ => {}
                }
            }
            rec.members = c.weight;
            rec.domains = c.domains.clone();
            rec.campaign = qualifies;
            for ev in emitted {
                rec.events.push(ev.clone());
                events.push(LedgerEvent { id, event: ev });
            }
            for &u in &c.members {
                new_assign[u as usize] = Some(id);
            }
        }
        self.assign = new_assign;
        events
    }

    /// The arena-independent serialized form: every domain symbol resolved
    /// to its string. Two ledgers tracking the same campaigns serialize
    /// byte-identically even when their arenas interned unrelated symbols
    /// in between (the `ingest_sym`-vs-`ingest` exactness contract).
    pub fn to_state(&self, arena: &SymbolArena) -> LedgerState {
        LedgerState {
            config: self.config,
            records: self
                .records
                .iter()
                .map(|r| RecordState {
                    id: r.id,
                    birth_epoch: r.birth_epoch,
                    last_growth_epoch: r.last_growth_epoch,
                    members: r.members,
                    domains: r.domains.iter().map(|&d| arena.resolve(d).to_string()).collect(),
                    campaign: r.campaign,
                    state: r.state,
                    events: r.events.clone(),
                })
                .collect(),
            assign: self.assign.clone(),
        }
    }

    /// Restores a ledger from [`CampaignLedger::to_state`], re-interning
    /// every domain against `arena` (the clusterer's, already restored —
    /// campaign domains are e2LDs the clusterer has interned, so this
    /// normally adds nothing).
    pub fn from_state(state: LedgerState, arena: &SharedArena) -> Self {
        Self {
            config: state.config,
            records: state
                .records
                .into_iter()
                .map(|r| CampaignRecord {
                    id: r.id,
                    birth_epoch: r.birth_epoch,
                    last_growth_epoch: r.last_growth_epoch,
                    members: r.members,
                    domains: r.domains.iter().map(|d| arena.intern(d)).collect(),
                    campaign: r.campaign,
                    state: r.state,
                    events: r.events,
                })
                .collect(),
            assign: state.assign,
        }
    }
}

/// Serialized form of one [`CampaignRecord`]: domains as strings.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordState {
    /// Stable ledger id.
    pub id: u32,
    /// Epoch the campaign was first observed.
    pub birth_epoch: u32,
    /// Last epoch the member count grew.
    pub last_growth_epoch: u32,
    /// Screenshot count at the last observation.
    pub members: u32,
    /// Distinct e2LDs at the last observation, sorted.
    pub domains: Vec<String>,
    /// Whether the domain count meets θc.
    pub campaign: bool,
    /// Current life state.
    pub state: LifeState,
    /// Full event journal.
    pub events: Vec<CampaignEvent>,
}

/// Serialized form of [`CampaignLedger`] — see
/// [`CampaignLedger::to_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerState {
    /// Dormancy thresholds.
    pub config: LedgerConfig,
    /// All records, domains resolved.
    pub records: Vec<RecordState>,
    /// Point → ledger-id assignment at the last observation.
    pub assign: Vec<Option<u32>>,
}

impl_json_struct!(LedgerConfig { quiet_window, death_window });
impl_json_enum!(LifeState { Active, Dormant, Dead, Merged, });
impl_json_enum!(CampaignEvent {
    Born { epoch: u32, members: u32, domains: u32 },
    Grew { epoch: u32, added: u32, members: u32 },
    DomainRotated { epoch: u32, domain: String },
    Promoted { epoch: u32, domains: u32 },
    Demoted { epoch: u32, domains: u32 },
    WentDormant { epoch: u32 },
    Died { epoch: u32 },
    Reactivated { epoch: u32 },
    MergedInto { epoch: u32, into: u32 },
});
impl_json_struct!(RecordState {
    id,
    birth_epoch,
    last_growth_epoch,
    members,
    domains,
    campaign,
    state,
    events
});
impl_json_struct!(LedgerEvent { id, event });
impl_json_struct!(LedgerState { config, records, assign });

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(arena: &mut SymbolArena, members: &[u32], weight: u32, domains: &[&str]) -> ObservedCluster {
        ObservedCluster {
            members: members.to_vec(),
            weight,
            domains: domains.iter().map(|d| arena.intern(d)).collect(),
        }
    }

    #[test]
    fn birth_growth_rotation_promotion() {
        let mut a = SymbolArena::new();
        let mut ledger = CampaignLedger::new(LedgerConfig::default());
        let ev = ledger.observe(0, &[obs(&mut a, &[0, 1], 3, &["a.com", "b.com"])], 2, 3, &a);
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0].event, CampaignEvent::Born { members: 3, domains: 2, .. }));
        assert!(!ledger.record(0).campaign);

        // Epoch 1: grows, rotates in a third domain, crosses θc = 3.
        let ev = {
            let c = obs(&mut a, &[0, 1, 2], 5, &["a.com", "b.com", "c.com"]);
            ledger.observe(1, &[c], 3, 3, &a)
        };
        let kinds: Vec<_> = ev.iter().map(|e| &e.event).collect();
        assert!(kinds.iter().any(|e| matches!(e, CampaignEvent::DomainRotated { domain, .. } if domain == "c.com")));
        assert!(kinds.iter().any(|e| matches!(e, CampaignEvent::Promoted { domains: 3, .. })));
        assert!(kinds.iter().any(|e| matches!(e, CampaignEvent::Grew { added: 2, members: 5, .. })));
        assert!(ledger.record(0).campaign);
        assert_eq!(ledger.campaigns().count(), 1);
    }

    #[test]
    fn dormancy_death_and_reactivation() {
        let config = LedgerConfig { quiet_window: 2, death_window: 4 };
        let mut a = SymbolArena::new();
        let mut ledger = CampaignLedger::new(config);
        let c = obs(&mut a, &[0], 2, &["a.com"]);
        ledger.observe(0, std::slice::from_ref(&c), 1, 1, &a);
        assert_eq!(ledger.record(0).state, LifeState::Active);
        ledger.observe(1, std::slice::from_ref(&c), 1, 1, &a);
        assert_eq!(ledger.record(0).state, LifeState::Active, "quiet 1 < window 2");
        let ev = ledger.observe(2, std::slice::from_ref(&c), 1, 1, &a);
        assert!(matches!(ev[0].event, CampaignEvent::WentDormant { epoch: 2 }));
        ledger.observe(3, std::slice::from_ref(&c), 1, 1, &a);
        let ev = ledger.observe(4, std::slice::from_ref(&c), 1, 1, &a);
        assert!(matches!(ev[0].event, CampaignEvent::Died { epoch: 4 }));
        assert_eq!(ledger.record(0).state, LifeState::Dead);

        let ev = {
            let c = obs(&mut a, &[0, 1], 3, &["a.com"]);
            ledger.observe(5, &[c], 2, 1, &a)
        };
        assert!(ev.iter().any(|e| matches!(e.event, CampaignEvent::Reactivated { epoch: 5 })));
        assert_eq!(ledger.record(0).state, LifeState::Active);
    }

    #[test]
    fn merge_keeps_smallest_id() {
        let mut a = SymbolArena::new();
        let mut ledger = CampaignLedger::new(LedgerConfig::default());
        // Two separate campaigns...
        let (c0, c1) = (obs(&mut a, &[0, 1], 2, &["a.com"]), obs(&mut a, &[2, 3], 2, &["b.com"]));
        ledger.observe(0, &[c0, c1], 4, 1, &a);
        assert_eq!(ledger.records().len(), 2);
        // ...that fuse into one cluster at epoch 1.
        let ev = {
            let c = obs(&mut a, &[0, 1, 2, 3, 4], 5, &["a.com", "b.com"]);
            ledger.observe(1, &[c], 5, 1, &a)
        };
        assert!(ev
            .iter()
            .any(|e| e.id == 1 && matches!(e.event, CampaignEvent::MergedInto { into: 0, .. })));
        assert_eq!(ledger.record(1).state, LifeState::Merged);
        assert_eq!(ledger.record(0).members, 5);
        assert_eq!(ledger.campaigns().count(), 1);
    }

    #[test]
    fn demotion_when_domains_fall_below_theta() {
        let mut a = SymbolArena::new();
        let mut ledger = CampaignLedger::new(LedgerConfig::default());
        let c = obs(&mut a, &[0, 1, 2], 3, &["a.com", "b.com", "c.com"]);
        ledger.observe(0, &[c], 3, 3, &a);
        assert!(ledger.record(0).campaign);
        // A border domain migrated away: down to 2 domains.
        let ev = {
            let c = obs(&mut a, &[0, 1], 2, &["a.com", "b.com"]);
            ledger.observe(1, &[c], 3, 3, &a)
        };
        assert!(ev.iter().any(|e| matches!(e.event, CampaignEvent::Demoted { domains: 2, .. })));
        assert!(!ledger.record(0).campaign);
    }

    #[test]
    fn state_roundtrip_is_arena_independent() {
        use seacma_util::json;
        let mut a = SymbolArena::new();
        // An arena with unrelated pre-existing symbols: resolved state
        // must not notice.
        a.intern("unrelated.example");
        let mut ledger = CampaignLedger::new(LedgerConfig::default());
        let c = obs(&mut a, &[0, 1], 3, &["a.com", "b.com"]);
        ledger.observe(0, &[c], 2, 2, &a);
        let c = obs(&mut a, &[0, 1, 2], 4, &["a.com", "b.com", "c.com"]);
        ledger.observe(1, &[c], 3, 2, &a);

        let text = json::to_string(&ledger.to_state(&a));
        let state: LedgerState = json::from_str(&text).expect("state parses");
        assert_eq!(json::to_string(&state), text, "re-serialization is byte-identical");

        // Restore into a *fresh* arena: records equal up to symbol values,
        // and the resolved state is byte-identical.
        let fresh = SharedArena::new();
        let back = CampaignLedger::from_state(state, &fresh);
        assert_eq!(back.records().len(), ledger.records().len());
        assert_eq!(json::to_string(&back.to_state(&fresh.read())), text);
        assert_eq!(back.assignments(), ledger.assignments());
    }
}
