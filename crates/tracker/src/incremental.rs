//! Exact incremental DBSCAN over the banded Hamming index.
//!
//! The batch pipeline (`seacma-vision::cluster`) re-clusters the whole
//! corpus on every run; this module maintains DBSCAN labels *online*, one
//! screenshot at a time, with amortized ≈2 region queries per unique point
//! — and the labels are **byte-identical** to a batch
//! [`cluster_screenshots`](seacma_vision::cluster::cluster_screenshots)
//! over the same prefix, at every prefix.
//!
//! # Why exactness is possible
//!
//! DBSCAN's scan order looks load-bearing but is not. The labels produced
//! by [`dbscan_with`](seacma_vision::dbscan::dbscan_with) have an
//! order-independent characterization (argued in DESIGN.md §2e):
//!
//! 1. a point is **core** iff its radius neighbourhood (including itself)
//!    has at least `min_pts` points;
//! 2. clusters are the connected components of core points under radius
//!    adjacency, and cluster ids are assigned in ascending order of each
//!    component's **minimal core index**;
//! 3. a non-core point with core neighbours is a **border** and joins the
//!    adjacent cluster with the smallest id; everything else is noise.
//!
//! So it suffices to maintain, under insertion: per-point neighbour counts
//! (for 1), a union-find over core points whose root is the component's
//! minimal core index (for 2), and each point's list of core neighbours
//! (for 3). Insertion only ever *adds* neighbours, so a point crosses the
//! `min_pts` threshold at most once — when it does, one extra region query
//! wires the new core into the union-find and into its neighbours' core
//! lists. Components only merge, never split; borders can still *move* to
//! an older cluster (and campaign domain counts can therefore shrink —
//! θc demotion is real, see the ledger).

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use seacma_util::impl_json_struct;
use seacma_vision::cluster::{
    assemble_clusters, ClusterParams, ScreenshotClusters, ScreenshotPoint,
};
use seacma_vision::dbscan::Label;
use seacma_vision::index::HammingIndex;

/// Streaming DBSCAN over `(dhash, e2LD)` screenshot points.
///
/// Duplicate pairs are deduplicated exactly as in the batch path: the
/// first occurrence becomes a *unique point* (the clustering domain), and
/// repeats only extend its original-index multiplicity.
#[derive(Debug, Clone)]
pub struct IncrementalClusterer {
    params: ClusterParams,
    index: HammingIndex,
    points: Vec<ScreenshotPoint>,
    /// Original (pre-dedup) indices carried by each unique point, ascending.
    originals: Vec<Vec<u32>>,
    /// `(dhash bits, e2LD) → unique index` dedup map.
    pair_index: HashMap<(u128, String), u32>,
    n_original: u32,
    /// |N(u)| per unique point, counting `u` itself.
    neighbor_count: Vec<u32>,
    core: Vec<bool>,
    /// Union-find parents over unique points; unions happen only between
    /// core points, and roots are always the minimal index of their set.
    parent: Vec<u32>,
    /// Core points adjacent to each unique point. Each `(point, core)`
    /// pair is recorded exactly once: at the point's insertion if the
    /// neighbour is already core, or at the neighbour's core transition.
    core_neighbors: Vec<Vec<u32>>,
    scratch: Vec<usize>,
    scratch2: Vec<usize>,
}

impl IncrementalClusterer {
    /// An empty clusterer for the given parameters.
    pub fn new(params: ClusterParams) -> Self {
        Self {
            params,
            index: HammingIndex::build(&[], params.eps),
            points: Vec::new(),
            originals: Vec::new(),
            pair_index: HashMap::new(),
            n_original: 0,
            neighbor_count: Vec::new(),
            core: Vec::new(),
            parent: Vec::new(),
            core_neighbors: Vec::new(),
            scratch: Vec::new(),
            scratch2: Vec::new(),
        }
    }

    /// The clustering parameters.
    pub fn params(&self) -> ClusterParams {
        self.params
    }

    /// Number of original (pre-dedup) points ingested.
    pub fn len(&self) -> usize {
        self.n_original as usize
    }

    /// Whether nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.n_original == 0
    }

    /// Number of distinct `(dhash, e2LD)` pairs seen.
    pub fn unique_len(&self) -> usize {
        self.points.len()
    }

    /// The unique points in arrival order.
    pub fn unique_points(&self) -> &[ScreenshotPoint] {
        &self.points
    }

    /// Original indices carried by each unique point.
    pub fn originals(&self) -> &[Vec<u32>] {
        &self.originals
    }

    /// Ingests one point, updating neighbour counts, core transitions and
    /// core-component connectivity. Amortized cost: one region query for
    /// the new point plus one for each point it tips over the `min_pts`
    /// threshold (each point transitions at most once, ever).
    pub fn insert(&mut self, point: ScreenshotPoint) {
        let orig = self.n_original;
        self.n_original += 1;
        match self.pair_index.entry((point.dhash.0, point.e2ld.clone())) {
            Entry::Occupied(e) => {
                // Exact duplicate pair: multiplicity only, no new unique
                // point — identical to the batch dedup.
                self.originals[*e.get() as usize].push(orig);
                return;
            }
            Entry::Vacant(e) => {
                e.insert(self.points.len() as u32);
            }
        }

        let u = self.index.insert(point.dhash);
        debug_assert_eq!(u, self.points.len());
        self.points.push(point);
        self.originals.push(vec![orig]);
        self.neighbor_count.push(0);
        self.core.push(false);
        self.parent.push(u as u32);
        self.core_neighbors.push(Vec::new());

        let mut nb = std::mem::take(&mut self.scratch);
        self.index.neighbours_into(u, &mut nb);
        self.neighbor_count[u] = nb.len() as u32;

        // Phase 1: bump neighbour counts and collect threshold crossings.
        // A crossing happens exactly when the count *reaches* min_pts, so
        // each point appears in `newly_core` at most once over its life.
        let mut newly_core: Vec<u32> = Vec::new();
        if nb.len() >= self.params.min_pts {
            newly_core.push(u as u32);
        }
        for &q in nb.iter().filter(|&&q| q != u) {
            self.neighbor_count[q] += 1;
            if self.core[q] {
                self.core_neighbors[u].push(q as u32);
            } else if self.neighbor_count[q] as usize >= self.params.min_pts {
                newly_core.push(q as u32);
            }
        }

        // Phase 2: mark all crossings first (so mutual unions between two
        // simultaneously-crossing cores are seen), then wire each new core
        // into its neighbourhood with one region query.
        for &c in &newly_core {
            self.core[c as usize] = true;
        }
        let mut nb2 = std::mem::take(&mut self.scratch2);
        for &c in &newly_core {
            self.index.neighbours_into(c as usize, &mut nb2);
            for &r in nb2.iter().filter(|&&r| r != c as usize) {
                self.core_neighbors[r].push(c);
                if self.core[r] {
                    union(&mut self.parent, c, r as u32);
                }
            }
        }
        self.scratch = nb;
        self.scratch2 = nb2;
    }

    /// Current DBSCAN labels over the unique points — byte-identical to
    /// `dbscan_with` run from scratch over the same points in the same
    /// order.
    pub fn labels(&self) -> Vec<Label> {
        let n = self.points.len();
        const NOISE: u32 = u32::MAX;
        // Component root per point (the component's minimal core index).
        let mut comp: Vec<u32> = vec![NOISE; n];
        for u in 0..n {
            if self.core[u] {
                comp[u] = find_ro(&self.parent, u as u32);
            } else {
                // Border rule: the smallest root among adjacent cores is
                // the earliest-formed cluster — the one whose expansion
                // claims the border first in the batch sweep.
                for &q in &self.core_neighbors[u] {
                    comp[u] = comp[u].min(find_ro(&self.parent, q));
                }
            }
        }
        // Batch cluster ids ascend with the component's minimal core
        // index, so ranking the distinct roots reproduces them exactly.
        let mut roots: Vec<u32> = comp.iter().copied().filter(|&r| r != NOISE).collect();
        roots.sort_unstable();
        roots.dedup();
        comp.iter()
            .map(|&r| {
                if r == NOISE {
                    Label::Noise
                } else {
                    Label::Cluster(roots.binary_search(&r).expect("root was collected"))
                }
            })
            .collect()
    }

    /// Assembles the current clusters — structurally identical to
    /// [`cluster_screenshots`](seacma_vision::cluster::cluster_screenshots)
    /// over the ingested prefix.
    pub fn clusters(&self) -> ScreenshotClusters {
        self.assemble(&self.labels())
    }

    /// [`ScreenshotClusters`] for a precomputed label vector (avoids
    /// re-deriving labels when the caller already holds them).
    pub fn assemble(&self, labels: &[Label]) -> ScreenshotClusters {
        let view: Vec<_> = self.points.iter().map(|p| (p.dhash, p.e2ld.as_str())).collect();
        assemble_clusters(&view, &self.originals, labels, self.params.theta_c)
    }

    /// Canonical serializable snapshot. Union-find parents are fully
    /// collapsed to their roots so the snapshot is a pure function of the
    /// ingested sequence, independent of interior path-compression state.
    pub fn to_state(&self) -> ClustererState {
        let parent: Vec<u32> =
            (0..self.parent.len() as u32).map(|u| find_ro(&self.parent, u)).collect();
        ClustererState {
            params: self.params,
            points: self.points.clone(),
            originals: self.originals.clone(),
            n_original: self.n_original,
            neighbor_count: self.neighbor_count.clone(),
            core: self.core.clone(),
            parent,
            core_neighbors: self.core_neighbors.clone(),
        }
    }

    /// Rebuilds a clusterer from a snapshot. The Hamming index and dedup
    /// map are reconstructed from the stored points (index construction is
    /// deterministic and equals repeated insertion), so resuming is
    /// byte-identical to never having snapshotted.
    pub fn from_state(state: ClustererState) -> Self {
        let hashes: Vec<_> = state.points.iter().map(|p| p.dhash).collect();
        let index = HammingIndex::build(&hashes, state.params.eps);
        let pair_index = state
            .points
            .iter()
            .enumerate()
            .map(|(u, p)| ((p.dhash.0, p.e2ld.clone()), u as u32))
            .collect();
        Self {
            params: state.params,
            index,
            points: state.points,
            originals: state.originals,
            pair_index,
            n_original: state.n_original,
            neighbor_count: state.neighbor_count,
            core: state.core,
            parent: state.parent,
            core_neighbors: state.core_neighbors,
            scratch: Vec::new(),
            scratch2: Vec::new(),
        }
    }
}

/// Serializable snapshot of an [`IncrementalClusterer`] (see
/// [`IncrementalClusterer::to_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClustererState {
    /// Clustering parameters.
    pub params: ClusterParams,
    /// Unique points in arrival order.
    pub points: Vec<ScreenshotPoint>,
    /// Original indices per unique point.
    pub originals: Vec<Vec<u32>>,
    /// Total original points ingested.
    pub n_original: u32,
    /// Neighbourhood sizes per unique point.
    pub neighbor_count: Vec<u32>,
    /// Core flags per unique point.
    pub core: Vec<bool>,
    /// Canonicalized union-find parents (`parent[u]` = component root).
    pub parent: Vec<u32>,
    /// Core neighbours per unique point, in recording order.
    pub core_neighbors: Vec<Vec<u32>>,
}

impl_json_struct!(ClustererState {
    params,
    points,
    originals,
    n_original,
    neighbor_count,
    core,
    parent,
    core_neighbors
});

/// Root of `x` without path compression — usable through `&self`.
/// Compression is cosmetic here: unions always hang the larger root under
/// the smaller, so chains stay short and every observable value is the
/// root itself.
fn find_ro(parent: &[u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        x = parent[x as usize];
    }
    x
}

/// Root of `x` with path halving.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let p = parent[x as usize];
        parent[x as usize] = parent[p as usize];
        x = parent[p as usize];
    }
    x
}

/// Union by minimal root: the surviving root is the smaller index, which
/// keeps the invariant that a set's root is its minimal element.
fn union(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra == rb {
        return;
    }
    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
    parent[hi as usize] = lo;
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_util::prop::Rng;
    use seacma_vision::cluster::cluster_screenshots;
    use seacma_vision::dhash::Dhash;

    fn mixed_corpus(seed: u64, n: usize) -> Vec<ScreenshotPoint> {
        let mut rng = Rng::new(seed);
        let centers: Vec<u128> = (0..4).map(|_| rng.u128()).collect();
        (0..n)
            .map(|i| {
                if rng.f64() < 0.75 {
                    let c = rng.below(centers.len() as u64) as usize;
                    let flips = rng.below(4);
                    let mut h = centers[c];
                    for _ in 0..flips {
                        h ^= 1u128 << rng.below(128);
                    }
                    ScreenshotPoint::new(Dhash(h), format!("c{c}d{}.xyz", i % 7))
                } else {
                    ScreenshotPoint::new(Dhash(rng.u128()), format!("noise{i}.com"))
                }
            })
            .collect()
    }

    #[test]
    fn incremental_equals_batch_at_every_prefix() {
        let pts = mixed_corpus(0x7AC4, 120);
        let mut inc = IncrementalClusterer::new(ClusterParams::default());
        for (i, p) in pts.iter().enumerate() {
            inc.insert(p.clone());
            let batch = cluster_screenshots(&pts[..=i], ClusterParams::default());
            assert_eq!(inc.clusters(), batch, "diverged at prefix {}", i + 1);
        }
    }

    #[test]
    fn duplicates_extend_multiplicity_only() {
        let mut inc = IncrementalClusterer::new(ClusterParams::default());
        let p = ScreenshotPoint::new(Dhash(42), "dup.com");
        for _ in 0..5 {
            inc.insert(p.clone());
        }
        assert_eq!(inc.len(), 5);
        assert_eq!(inc.unique_len(), 1);
        assert_eq!(inc.originals()[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(inc.clusters().noise, 5);
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let params = ClusterParams { min_pts: 1, theta_c: 1, ..Default::default() };
        let pts = mixed_corpus(0xFEED, 40);
        let mut inc = IncrementalClusterer::new(params);
        for p in &pts {
            inc.insert(p.clone());
        }
        assert_eq!(inc.clusters(), cluster_screenshots(&pts, params));
        assert_eq!(inc.clusters().noise, 0);
    }

    #[test]
    fn state_roundtrip_then_continue_matches_uninterrupted() {
        let pts = mixed_corpus(0xBEEF, 100);
        let params = ClusterParams::default();
        let mut whole = IncrementalClusterer::new(params);
        let mut front = IncrementalClusterer::new(params);
        for p in &pts[..60] {
            whole.insert(p.clone());
            front.insert(p.clone());
        }
        let mut resumed = IncrementalClusterer::from_state(front.to_state());
        for p in &pts[60..] {
            whole.insert(p.clone());
            resumed.insert(p.clone());
        }
        assert_eq!(resumed.to_state(), whole.to_state());
        assert_eq!(resumed.clusters(), whole.clusters());
    }

    #[test]
    fn border_reassignment_can_shrink_a_cluster() {
        // min_pts = 4. Cluster X around 24·(low bits); border q = 12 sits
        // within radius of X's center only. Epoch 2 grows a second, older-
        // indexed region around y = 0 until y becomes core — q's smallest-
        // root adjacent cluster is now Y, so X loses q (and q's domain).
        let params = ClusterParams { min_pts: 4, theta_c: 1, eps: 0.1 };
        let y = 0u128;
        let q = (1u128 << 12) - 1; // 12 bits: within radius of y and x
        let x = (1u128 << 24) - 1; // 24 low bits: 12 from q, 24 from y

        let mut pts = vec![
            ScreenshotPoint::new(Dhash(y), "y0.com"),
            ScreenshotPoint::new(Dhash(q), "q.com"),
            ScreenshotPoint::new(Dhash(x), "x0.com"),
        ];
        // Make x core: three high-bit near-duplicates (far from q and y).
        for i in 0..3 {
            pts.push(ScreenshotPoint::new(Dhash(x ^ (1u128 << (100 + i))), format!("x{}.com", i + 1)));
        }
        let mut inc = IncrementalClusterer::new(params);
        for p in &pts {
            inc.insert(p.clone());
        }
        let before = inc.clusters();
        assert_eq!(before.total_clusters(), 1);
        assert!(before.campaigns[0].domains.contains("q.com"), "q starts as X's border");

        // Epoch 2: make y core.
        let epoch2: Vec<ScreenshotPoint> = (0..3)
            .map(|i| ScreenshotPoint::new(Dhash(y ^ (1u128 << (100 + i))), format!("y{}.com", i + 1)))
            .collect();
        for p in &epoch2 {
            inc.insert(p.clone());
        }
        let after = inc.clusters();
        assert_eq!(after.total_clusters(), 2);
        let x_cluster = after
            .campaigns
            .iter()
            .find(|c| c.domains.contains("x0.com"))
            .expect("X survives");
        assert!(!x_cluster.domains.contains("q.com"), "q must move to the older cluster Y");

        // Exactness gate on the full construction.
        let mut all = pts.clone();
        all.extend(epoch2);
        assert_eq!(after, cluster_screenshots(&all, params));
    }
}
