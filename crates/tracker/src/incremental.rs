//! Exact incremental DBSCAN over the banded Hamming index.
//!
//! The batch pipeline (`seacma-vision::cluster`) re-clusters the whole
//! corpus on every run; this module maintains DBSCAN labels *online*, one
//! screenshot at a time, with amortized ≈2 region queries per unique point
//! — and the labels are **byte-identical** to a batch
//! [`cluster_screenshots`](seacma_vision::cluster::cluster_screenshots)
//! over the same prefix, at every prefix.
//!
//! # Why exactness is possible
//!
//! DBSCAN's scan order looks load-bearing but is not. The labels produced
//! by [`dbscan_with`](seacma_vision::dbscan::dbscan_with) have an
//! order-independent characterization (argued in DESIGN.md §2e):
//!
//! 1. a point is **core** iff its radius neighbourhood (including itself)
//!    has at least `min_pts` points;
//! 2. clusters are the connected components of core points under radius
//!    adjacency, and cluster ids are assigned in ascending order of each
//!    component's **minimal core index**;
//! 3. a non-core point with core neighbours is a **border** and joins the
//!    adjacent cluster with the smallest id; everything else is noise.
//!
//! So it suffices to maintain, under insertion: per-point neighbour counts
//! (for 1), a union-find over core points whose root is the component's
//! minimal core index (for 2), and each point's list of core neighbours
//! (for 3). Insertion only ever *adds* neighbours, so a point crosses the
//! `min_pts` threshold at most once — when it does, one extra region query
//! wires the new core into the union-find and into its neighbours' core
//! lists. Components only merge, never split; borders can still *move* to
//! an older cluster (and campaign domain counts can therefore shrink —
//! θc demotion is real, see the ledger).
//!
//! # Storage: struct-of-arrays over a symbol arena
//!
//! Unique points are not stored as `ScreenshotPoint` structs. The dhash
//! column lives inside the [`HammingIndex`] (one contiguous `u128` slice,
//! scanned directly by band probes), e2LDs are a parallel [`Sym`] column
//! into a shared [`SymbolArena`](seacma_util::sym::SymbolArena), and the
//! DBSCAN bookkeeping (neighbour counts, core flags, union-find parents)
//! are parallel `u32`/`bool` columns. The dedup key is `(u128, Sym)` —
//! no string hashing or cloning on the hot insert path. Exactness is
//! unaffected: symbols are in bijection with their strings within one
//! arena, so `(dhash, Sym)` dedup keeps exactly the pairs `(dhash, e2LD)`
//! dedup keeps, and every observable output resolves symbols back to
//! strings before leaving the crate.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use seacma_util::impl_json_struct;
use seacma_util::sym::{SharedArena, Sym};
use seacma_vision::cluster::{
    assemble_clusters, ClusterParams, ScreenshotClusters, ScreenshotPoint,
};
use seacma_vision::dbscan::Label;
use seacma_vision::dhash::Dhash;
use seacma_vision::index::HammingIndex;

/// Streaming DBSCAN over `(dhash, e2LD)` screenshot points.
///
/// Duplicate pairs are deduplicated exactly as in the batch path: the
/// first occurrence becomes a *unique point* (the clustering domain), and
/// repeats only extend its original-index multiplicity.
#[derive(Debug, Clone)]
pub struct IncrementalClusterer {
    params: ClusterParams,
    /// The arena every e2LD symbol in `e2lds` resolves against. Shared:
    /// the pipeline hands its world arena in via
    /// [`IncrementalClusterer::with_arena`] so crawl records feed the
    /// clusterer without re-interning strings.
    arena: SharedArena,
    /// Owns the contiguous dhash column (see [`HammingIndex::hashes`]).
    index: HammingIndex,
    /// e2LD symbol per unique point — parallel to the index's hash column.
    e2lds: Vec<Sym>,
    /// Original (pre-dedup) indices carried by each unique point, ascending.
    originals: Vec<Vec<u32>>,
    /// `(dhash bits, e2LD symbol) → unique index` dedup map.
    pair_index: HashMap<(u128, Sym), u32>,
    n_original: u32,
    /// |N(u)| per unique point, counting `u` itself.
    neighbor_count: Vec<u32>,
    core: Vec<bool>,
    /// Union-find parents over unique points; unions happen only between
    /// core points, and roots are always the minimal index of their set.
    parent: Vec<u32>,
    /// Core points adjacent to each unique point. Each `(point, core)`
    /// pair is recorded exactly once: at the point's insertion if the
    /// neighbour is already core, or at the neighbour's core transition.
    core_neighbors: Vec<Vec<u32>>,
    scratch: Vec<usize>,
    scratch2: Vec<usize>,
}

impl IncrementalClusterer {
    /// An empty clusterer with its own private symbol arena.
    pub fn new(params: ClusterParams) -> Self {
        Self::with_arena(params, SharedArena::new())
    }

    /// An empty clusterer interning e2LDs into `arena` — the pipeline
    /// passes its world-level arena so crawl-record symbols can be
    /// ingested directly via [`IncrementalClusterer::insert_sym`].
    pub fn with_arena(params: ClusterParams, arena: SharedArena) -> Self {
        Self {
            params,
            arena,
            index: HammingIndex::build(&[], params.eps),
            e2lds: Vec::new(),
            originals: Vec::new(),
            pair_index: HashMap::new(),
            n_original: 0,
            neighbor_count: Vec::new(),
            core: Vec::new(),
            parent: Vec::new(),
            core_neighbors: Vec::new(),
            scratch: Vec::new(),
            scratch2: Vec::new(),
        }
    }

    /// The clustering parameters.
    pub fn params(&self) -> ClusterParams {
        self.params
    }

    /// The arena this clusterer's e2LD symbols resolve against.
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// Number of original (pre-dedup) points ingested.
    pub fn len(&self) -> usize {
        self.n_original as usize
    }

    /// Whether nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.n_original == 0
    }

    /// Number of distinct `(dhash, e2LD)` pairs seen.
    pub fn unique_len(&self) -> usize {
        self.e2lds.len()
    }

    /// The unique points in arrival order, materialized from the dhash and
    /// e2LD-symbol columns. Hot paths should prefer the columns themselves
    /// ([`IncrementalClusterer::dhashes`] /
    /// [`IncrementalClusterer::e2ld_syms`]).
    pub fn unique_points(&self) -> Vec<ScreenshotPoint> {
        let arena = self.arena.read();
        self.index
            .hashes()
            .iter()
            .zip(&self.e2lds)
            .map(|(&d, &s)| ScreenshotPoint::new(d, arena.resolve(s)))
            .collect()
    }

    /// The contiguous dhash column, one entry per unique point.
    pub fn dhashes(&self) -> &[Dhash] {
        self.index.hashes()
    }

    /// The e2LD symbol column, parallel to
    /// [`IncrementalClusterer::dhashes`]; resolve via
    /// [`IncrementalClusterer::arena`].
    pub fn e2ld_syms(&self) -> &[Sym] {
        &self.e2lds
    }

    /// The live Hamming index over the unique points' hashes. The daemon's
    /// snapshot clones this instead of rebuilding (incremental insertion
    /// produces a structure identical to a fresh build over the same
    /// hashes).
    pub fn hamming_index(&self) -> &HammingIndex {
        &self.index
    }

    /// Original indices carried by each unique point.
    pub fn originals(&self) -> &[Vec<u32>] {
        &self.originals
    }

    /// Ingests one point (struct form; interns the e2LD and delegates to
    /// [`IncrementalClusterer::insert_sym`]).
    pub fn insert(&mut self, point: ScreenshotPoint) {
        self.insert_ref(point.dhash, &point.e2ld);
    }

    /// Ingests one point given by reference, avoiding the caller-side
    /// `ScreenshotPoint` construction. Returns the new unique-point index
    /// when the pair was never seen before.
    pub fn insert_ref(&mut self, dhash: Dhash, e2ld: &str) -> Option<usize> {
        let sym = self.arena.intern(e2ld);
        self.insert_sym(dhash, sym)
    }

    /// Ingests one point given as a pre-interned symbol — the zero-string
    /// hot path. `e2ld` **must** come from this clusterer's arena
    /// ([`IncrementalClusterer::arena`]); symbols don't travel between
    /// arenas. Returns the new unique-point index when the `(dhash, e2LD)`
    /// pair was never seen before (`None` for an exact duplicate).
    ///
    /// Updates neighbour counts, core transitions and core-component
    /// connectivity. Amortized cost: one region query for the new point
    /// plus one for each point it tips over the `min_pts` threshold (each
    /// point transitions at most once, ever).
    pub fn insert_sym(&mut self, dhash: Dhash, e2ld: Sym) -> Option<usize> {
        let orig = self.n_original;
        self.n_original += 1;
        match self.pair_index.entry((dhash.0, e2ld)) {
            Entry::Occupied(e) => {
                // Exact duplicate pair: multiplicity only, no new unique
                // point — identical to the batch dedup.
                self.originals[*e.get() as usize].push(orig);
                return None;
            }
            Entry::Vacant(e) => {
                e.insert(self.e2lds.len() as u32);
            }
        }

        let u = self.index.insert(dhash);
        debug_assert_eq!(u, self.e2lds.len());
        self.e2lds.push(e2ld);
        self.originals.push(vec![orig]);
        self.neighbor_count.push(0);
        self.core.push(false);
        self.parent.push(u as u32);
        self.core_neighbors.push(Vec::new());

        let mut nb = std::mem::take(&mut self.scratch);
        self.index.neighbours_into(u, &mut nb);
        self.neighbor_count[u] = nb.len() as u32;

        // Phase 1: bump neighbour counts and collect threshold crossings.
        // A crossing happens exactly when the count *reaches* min_pts, so
        // each point appears in `newly_core` at most once over its life.
        let mut newly_core: Vec<u32> = Vec::new();
        if nb.len() >= self.params.min_pts {
            newly_core.push(u as u32);
        }
        for &q in nb.iter().filter(|&&q| q != u) {
            self.neighbor_count[q] += 1;
            if self.core[q] {
                self.core_neighbors[u].push(q as u32);
            } else if self.neighbor_count[q] as usize >= self.params.min_pts {
                newly_core.push(q as u32);
            }
        }

        // Phase 2: mark all crossings first (so mutual unions between two
        // simultaneously-crossing cores are seen), then wire each new core
        // into its neighbourhood with one region query.
        for &c in &newly_core {
            self.core[c as usize] = true;
        }
        let mut nb2 = std::mem::take(&mut self.scratch2);
        for &c in &newly_core {
            self.index.neighbours_into(c as usize, &mut nb2);
            for &r in nb2.iter().filter(|&&r| r != c as usize) {
                self.core_neighbors[r].push(c);
                if self.core[r] {
                    union(&mut self.parent, c, r as u32);
                }
            }
        }
        self.scratch = nb;
        self.scratch2 = nb2;
        Some(u)
    }

    /// Current DBSCAN labels over the unique points — byte-identical to
    /// `dbscan_with` run from scratch over the same points in the same
    /// order. The sweep reads only the bookkeeping columns (core flags,
    /// union-find parents, core-neighbour lists) — contiguous scans, no
    /// point structs.
    pub fn labels(&self) -> Vec<Label> {
        let n = self.e2lds.len();
        const NOISE: u32 = u32::MAX;
        // Component root per point (the component's minimal core index).
        let mut comp: Vec<u32> = vec![NOISE; n];
        for u in 0..n {
            if self.core[u] {
                comp[u] = find_ro(&self.parent, u as u32);
            } else {
                // Border rule: the smallest root among adjacent cores is
                // the earliest-formed cluster — the one whose expansion
                // claims the border first in the batch sweep.
                for &q in &self.core_neighbors[u] {
                    comp[u] = comp[u].min(find_ro(&self.parent, q));
                }
            }
        }
        // Batch cluster ids ascend with the component's minimal core
        // index, so ranking the distinct roots reproduces them exactly.
        let mut roots: Vec<u32> = comp.iter().copied().filter(|&r| r != NOISE).collect();
        roots.sort_unstable();
        roots.dedup();
        comp.iter()
            .map(|&r| {
                if r == NOISE {
                    Label::Noise
                } else {
                    Label::Cluster(roots.binary_search(&r).expect("root was collected"))
                }
            })
            .collect()
    }

    /// Assembles the current clusters — structurally identical to
    /// [`cluster_screenshots`](seacma_vision::cluster::cluster_screenshots)
    /// over the ingested prefix.
    pub fn clusters(&self) -> ScreenshotClusters {
        self.assemble(&self.labels())
    }

    /// [`ScreenshotClusters`] for a precomputed label vector (avoids
    /// re-deriving labels when the caller already holds them).
    pub fn assemble(&self, labels: &[Label]) -> ScreenshotClusters {
        let arena = self.arena.read();
        let view: Vec<_> = self
            .index
            .hashes()
            .iter()
            .zip(&self.e2lds)
            .map(|(&d, &s)| (d, arena.resolve(s)))
            .collect();
        assemble_clusters(&view, &self.originals, labels, self.params.theta_c)
    }

    /// Canonical serializable snapshot. Union-find parents are fully
    /// collapsed to their roots so the snapshot is a pure function of the
    /// ingested sequence, independent of interior path-compression state.
    /// Symbols are resolved to strings on the way out, so the snapshot is
    /// **arena-independent**: two clusterers fed the same points produce
    /// byte-identical states even if their (possibly shared) arenas hold
    /// different surrounding content.
    pub fn to_state(&self) -> ClustererState {
        let parent: Vec<u32> =
            (0..self.parent.len() as u32).map(|u| find_ro(&self.parent, u)).collect();
        ClustererState {
            params: self.params,
            points: self.unique_points(),
            originals: self.originals.clone(),
            n_original: self.n_original,
            neighbor_count: self.neighbor_count.clone(),
            core: self.core.clone(),
            parent,
            core_neighbors: self.core_neighbors.clone(),
        }
    }

    /// Rebuilds a clusterer from a snapshot. The Hamming index and dedup
    /// map are reconstructed from the stored points (index construction is
    /// deterministic and equals repeated insertion), and the e2LDs are
    /// re-interned into a fresh arena in unique-point order — which is
    /// exactly each string's first-seen order in the original ingestion
    /// sequence (a string's first occurrence is always a new unique pair),
    /// so the resumed arena matches a never-snapshotted private arena
    /// symbol for symbol. Resuming is byte-identical to never having
    /// snapshotted.
    pub fn from_state(state: ClustererState) -> Self {
        let hashes: Vec<_> = state.points.iter().map(|p| p.dhash).collect();
        let index = HammingIndex::build(&hashes, state.params.eps);
        let arena = SharedArena::new();
        let mut e2lds = Vec::with_capacity(state.points.len());
        let mut pair_index = HashMap::with_capacity(state.points.len());
        for (u, p) in state.points.iter().enumerate() {
            let sym = arena.intern(&p.e2ld);
            e2lds.push(sym);
            pair_index.insert((p.dhash.0, sym), u as u32);
        }
        Self {
            params: state.params,
            arena,
            index,
            e2lds,
            originals: state.originals,
            pair_index,
            n_original: state.n_original,
            neighbor_count: state.neighbor_count,
            core: state.core,
            parent: state.parent,
            core_neighbors: state.core_neighbors,
            scratch: Vec::new(),
            scratch2: Vec::new(),
        }
    }
}

/// Serializable snapshot of an [`IncrementalClusterer`] (see
/// [`IncrementalClusterer::to_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClustererState {
    /// Clustering parameters.
    pub params: ClusterParams,
    /// Unique points in arrival order.
    pub points: Vec<ScreenshotPoint>,
    /// Original indices per unique point.
    pub originals: Vec<Vec<u32>>,
    /// Total original points ingested.
    pub n_original: u32,
    /// Neighbourhood sizes per unique point.
    pub neighbor_count: Vec<u32>,
    /// Core flags per unique point.
    pub core: Vec<bool>,
    /// Canonicalized union-find parents (`parent[u]` = component root).
    pub parent: Vec<u32>,
    /// Core neighbours per unique point, in recording order.
    pub core_neighbors: Vec<Vec<u32>>,
}

impl_json_struct!(ClustererState {
    params,
    points,
    originals,
    n_original,
    neighbor_count,
    core,
    parent,
    core_neighbors
});

/// Root of `x` without path compression — usable through `&self`.
/// Compression is cosmetic here: unions always hang the larger root under
/// the smaller, so chains stay short and every observable value is the
/// root itself.
fn find_ro(parent: &[u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        x = parent[x as usize];
    }
    x
}

/// Root of `x` with path halving.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let p = parent[x as usize];
        parent[x as usize] = parent[p as usize];
        x = parent[p as usize];
    }
    x
}

/// Union by minimal root: the surviving root is the smaller index, which
/// keeps the invariant that a set's root is its minimal element.
fn union(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra == rb {
        return;
    }
    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
    parent[hi as usize] = lo;
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_util::prop::Rng;
    use seacma_vision::cluster::cluster_screenshots;
    use seacma_vision::dhash::Dhash;

    fn mixed_corpus(seed: u64, n: usize) -> Vec<ScreenshotPoint> {
        let mut rng = Rng::new(seed);
        let centers: Vec<u128> = (0..4).map(|_| rng.u128()).collect();
        (0..n)
            .map(|i| {
                if rng.f64() < 0.75 {
                    let c = rng.below(centers.len() as u64) as usize;
                    let flips = rng.below(4);
                    let mut h = centers[c];
                    for _ in 0..flips {
                        h ^= 1u128 << rng.below(128);
                    }
                    ScreenshotPoint::new(Dhash(h), format!("c{c}d{}.xyz", i % 7))
                } else {
                    ScreenshotPoint::new(Dhash(rng.u128()), format!("noise{i}.com"))
                }
            })
            .collect()
    }

    #[test]
    fn incremental_equals_batch_at_every_prefix() {
        let pts = mixed_corpus(0x7AC4, 120);
        let mut inc = IncrementalClusterer::new(ClusterParams::default());
        for (i, p) in pts.iter().enumerate() {
            inc.insert(p.clone());
            let batch = cluster_screenshots(&pts[..=i], ClusterParams::default());
            assert_eq!(inc.clusters(), batch, "diverged at prefix {}", i + 1);
        }
    }

    #[test]
    fn duplicates_extend_multiplicity_only() {
        let mut inc = IncrementalClusterer::new(ClusterParams::default());
        let p = ScreenshotPoint::new(Dhash(42), "dup.com");
        for _ in 0..5 {
            inc.insert(p.clone());
        }
        assert_eq!(inc.len(), 5);
        assert_eq!(inc.unique_len(), 1);
        assert_eq!(inc.originals()[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(inc.clusters().noise, 5);
        assert_eq!(inc.arena().len(), 1, "duplicates intern one symbol");
    }

    #[test]
    fn insert_sym_on_a_shared_arena_matches_insert() {
        let pts = mixed_corpus(0x5A5A, 80);
        let arena = SharedArena::new();
        // Pre-populate the shared arena with unrelated content, as the
        // pipeline's world arena would be: symbol *values* shift, outputs
        // must not.
        arena.intern("publisher0.com");
        arena.intern("adnet.example");
        let mut by_struct = IncrementalClusterer::new(ClusterParams::default());
        let mut by_sym = IncrementalClusterer::with_arena(ClusterParams::default(), arena.clone());
        for p in &pts {
            by_struct.insert(p.clone());
            let sym = arena.intern(&p.e2ld);
            by_sym.insert_sym(p.dhash, sym);
        }
        assert_eq!(by_sym.clusters(), by_struct.clusters());
        assert_eq!(by_sym.to_state(), by_struct.to_state(), "state is arena-independent");
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let params = ClusterParams { min_pts: 1, theta_c: 1, ..Default::default() };
        let pts = mixed_corpus(0xFEED, 40);
        let mut inc = IncrementalClusterer::new(params);
        for p in &pts {
            inc.insert(p.clone());
        }
        assert_eq!(inc.clusters(), cluster_screenshots(&pts, params));
        assert_eq!(inc.clusters().noise, 0);
    }

    #[test]
    fn state_roundtrip_then_continue_matches_uninterrupted() {
        let pts = mixed_corpus(0xBEEF, 100);
        let params = ClusterParams::default();
        let mut whole = IncrementalClusterer::new(params);
        let mut front = IncrementalClusterer::new(params);
        for p in &pts[..60] {
            whole.insert(p.clone());
            front.insert(p.clone());
        }
        let mut resumed = IncrementalClusterer::from_state(front.to_state());
        assert_eq!(
            resumed.arena().len(),
            front.arena().len(),
            "resume re-interns e2LDs in first-seen order"
        );
        for p in &pts[60..] {
            whole.insert(p.clone());
            resumed.insert(p.clone());
        }
        assert_eq!(resumed.to_state(), whole.to_state());
        assert_eq!(resumed.clusters(), whole.clusters());
        assert_eq!(resumed.arena().len(), whole.arena().len());
    }

    #[test]
    fn border_reassignment_can_shrink_a_cluster() {
        // min_pts = 4. Cluster X around 24·(low bits); border q = 12 sits
        // within radius of X's center only. Epoch 2 grows a second, older-
        // indexed region around y = 0 until y becomes core — q's smallest-
        // root adjacent cluster is now Y, so X loses q (and q's domain).
        let params = ClusterParams { min_pts: 4, theta_c: 1, eps: 0.1 };
        let y = 0u128;
        let q = (1u128 << 12) - 1; // 12 bits: within radius of y and x
        let x = (1u128 << 24) - 1; // 24 low bits: 12 from q, 24 from y

        let mut pts = vec![
            ScreenshotPoint::new(Dhash(y), "y0.com"),
            ScreenshotPoint::new(Dhash(q), "q.com"),
            ScreenshotPoint::new(Dhash(x), "x0.com"),
        ];
        // Make x core: three high-bit near-duplicates (far from q and y).
        for i in 0..3 {
            pts.push(ScreenshotPoint::new(Dhash(x ^ (1u128 << (100 + i))), format!("x{}.com", i + 1)));
        }
        let mut inc = IncrementalClusterer::new(params);
        for p in &pts {
            inc.insert(p.clone());
        }
        let before = inc.clusters();
        assert_eq!(before.total_clusters(), 1);
        assert!(before.campaigns[0].domains.contains("q.com"), "q starts as X's border");

        // Epoch 2: make y core.
        let epoch2: Vec<ScreenshotPoint> = (0..3)
            .map(|i| ScreenshotPoint::new(Dhash(y ^ (1u128 << (100 + i))), format!("y{}.com", i + 1)))
            .collect();
        for p in &epoch2 {
            inc.insert(p.clone());
        }
        let after = inc.clusters();
        assert_eq!(after.total_clusters(), 2);
        let x_cluster = after
            .campaigns
            .iter()
            .find(|c| c.domains.contains("x0.com"))
            .expect("X survives");
        assert!(!x_cluster.domains.contains("q.com"), "q must move to the older cluster Y");

        // Exactness gate on the full construction.
        let mut all = pts.clone();
        all.extend(epoch2);
        assert_eq!(after, cluster_screenshots(&all, params));
    }
}
