//! Generic DBSCAN (density-based spatial clustering of applications with
//! noise).
//!
//! The paper clusters `(dhash, e2LD)` pairs with DBSCAN using
//! `eps = 0.1` (normalized Hamming distance) and `MinPts = 3`. This module
//! provides a faithful, allocation-conscious DBSCAN over an arbitrary
//! pairwise distance function, so it can also be reused for the eps/θc
//! ablation benches.

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighbourhood radius: points within distance `<= eps` are neighbours.
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a point
    /// to be a *core* point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    /// The paper's settings: `eps = 0.1`, `MinPts = 3`.
    fn default() -> Self {
        Self { eps: 0.1, min_pts: 3 }
    }
}

/// Cluster assignment for one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Point does not belong to any dense region.
    Noise,
    /// Member of cluster `id` (ids are contiguous from 0).
    Cluster(usize),
}

impl Label {
    /// The cluster id, if any.
    pub fn cluster_id(self) -> Option<usize> {
        match self {
            Label::Cluster(id) => Some(id),
            Label::Noise => None,
        }
    }
}

/// Runs DBSCAN over `n` points with pairwise distance `dist`.
///
/// Returns one [`Label`] per point. Border points are assigned to the first
/// core point that reaches them (classic DBSCAN order-dependence; with the
/// tight eps used for perceptual hashes this is immaterial because clusters
/// are well separated).
///
/// Complexity is O(n²) distance evaluations — the same regime as the paper,
/// which clustered ~200k screenshots offline.
pub fn dbscan<F>(n: usize, params: DbscanParams, mut dist: F) -> Vec<Label>
where
    F: FnMut(usize, usize) -> f64,
{
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;

    let mut labels = vec![UNVISITED; n];
    let mut next_cluster = 0usize;
    let mut queue: Vec<usize> = Vec::new();

    let neighbours = |p: usize, dist: &mut F| -> Vec<usize> {
        (0..n).filter(|&q| dist(p, q) <= params.eps).collect()
    };

    for p in 0..n {
        if labels[p] != UNVISITED {
            continue;
        }
        let nb = neighbours(p, &mut dist);
        if nb.len() < params.min_pts {
            labels[p] = NOISE;
            continue;
        }
        let cid = next_cluster;
        next_cluster += 1;
        labels[p] = cid;
        queue.clear();
        queue.extend(nb.into_iter().filter(|&q| q != p));
        while let Some(q) = queue.pop() {
            if labels[q] == NOISE {
                labels[q] = cid; // border point
                continue;
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cid;
            let qn = neighbours(q, &mut dist);
            if qn.len() >= params.min_pts {
                queue.extend(qn.into_iter().filter(|&r| labels[r] == UNVISITED || labels[r] == NOISE));
            }
        }
    }

    labels
        .into_iter()
        .map(|l| if l == NOISE || l == UNVISITED { Label::Noise } else { Label::Cluster(l) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d1(points: &[f64]) -> impl FnMut(usize, usize) -> f64 + '_ {
        move |a, b| (points[a] - points[b]).abs()
    }

    #[test]
    fn empty_input() {
        let labels = dbscan(0, DbscanParams::default(), |_, _| 0.0);
        assert!(labels.is_empty());
    }

    #[test]
    fn single_point_is_noise_with_minpts_over_one() {
        let labels = dbscan(1, DbscanParams { eps: 1.0, min_pts: 2 }, |_, _| 0.0);
        assert_eq!(labels, vec![Label::Noise]);
    }

    #[test]
    fn single_point_cluster_with_minpts_one() {
        let labels = dbscan(1, DbscanParams { eps: 1.0, min_pts: 1 }, |_, _| 0.0);
        assert_eq!(labels, vec![Label::Cluster(0)]);
    }

    #[test]
    fn two_well_separated_blobs() {
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let labels = dbscan(pts.len(), DbscanParams { eps: 0.5, min_pts: 3 }, d1(&pts));
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
        assert!(labels.iter().all(|l| matches!(l, Label::Cluster(_))));
    }

    #[test]
    fn sparse_points_are_noise() {
        let pts = [0.0, 5.0, 10.0, 15.0];
        let labels = dbscan(pts.len(), DbscanParams { eps: 1.0, min_pts: 2 }, d1(&pts));
        assert!(labels.iter().all(|&l| l == Label::Noise));
    }

    #[test]
    fn chain_expansion_reaches_transitively() {
        // Points 0.0, 0.4, 0.8, ... each within eps of the next: DBSCAN's
        // density-reachability must merge the whole chain into one cluster.
        let pts: Vec<f64> = (0..10).map(|i| i as f64 * 0.4).collect();
        let labels = dbscan(pts.len(), DbscanParams { eps: 0.5, min_pts: 2 }, d1(&pts));
        let first = labels[0];
        assert!(matches!(first, Label::Cluster(_)));
        assert!(labels.iter().all(|&l| l == first));
    }

    #[test]
    fn border_point_attaches_to_cluster() {
        // Dense blob at 0 plus one point at 0.9 reachable from the blob edge
        // but itself not core.
        let pts = [0.0, 0.05, 0.1, 0.55];
        let labels = dbscan(pts.len(), DbscanParams { eps: 0.5, min_pts: 3 }, d1(&pts));
        assert_eq!(labels[3], labels[0], "border point must join the cluster");
    }

    #[test]
    fn cluster_ids_are_contiguous() {
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 20.0, 20.1, 20.2];
        let labels = dbscan(pts.len(), DbscanParams { eps: 0.5, min_pts: 3 }, d1(&pts));
        let mut ids: Vec<usize> = labels.iter().filter_map(|l| l.cluster_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
