//! Generic DBSCAN (density-based spatial clustering of applications with
//! noise).
//!
//! The paper clusters `(dhash, e2LD)` pairs with DBSCAN using
//! `eps = 0.1` (normalized Hamming distance) and `MinPts = 3`. This module
//! provides a faithful, allocation-conscious DBSCAN whose region queries go
//! through the [`RegionQuery`] trait: the classic pairwise-distance closure
//! ([`dbscan`]) remains the fallback O(n²) implementation, while
//! [`HammingIndex`](crate::index::HammingIndex) supplies the sub-quadratic
//! indexed path with byte-identical output (see DESIGN.md, "Hamming
//! neighbour index").

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighbourhood radius: points within distance `<= eps` are neighbours.
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a point
    /// to be a *core* point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    /// The paper's settings: `eps = 0.1`, `MinPts = 3`.
    fn default() -> Self {
        Self { eps: 0.1, min_pts: 3 }
    }
}

/// Cluster assignment for one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Point does not belong to any dense region.
    Noise,
    /// Member of cluster `id` (ids are contiguous from 0).
    Cluster(usize),
}

impl Label {
    /// The cluster id, if any.
    pub fn cluster_id(self) -> Option<usize> {
        match self {
            Label::Cluster(id) => Some(id),
            Label::Noise => None,
        }
    }
}

/// A neighbourhood oracle: answers "which points lie within the clustering
/// radius of point `p`?" for a fixed point set.
///
/// Implementations must write the **ascending, deduplicated** index list
/// into `out` (including `p` itself, which is always within radius zero of
/// itself). DBSCAN's output is a pure function of these lists, so two
/// implementations that return equal lists produce byte-identical labels —
/// the contract that lets the indexed and precomputed-parallel paths stand
/// in for the naive scan.
pub trait RegionQuery {
    /// Number of points in the set.
    fn len(&self) -> usize;

    /// Writes the neighbours of `p` (ascending, deduped, including `p`)
    /// into `out`, replacing its contents.
    fn region(&mut self, p: usize, out: &mut Vec<usize>);

    /// Whether the point set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The fallback [`RegionQuery`]: a linear scan over a pairwise distance
/// closure, O(n) per query and O(n²) over a full DBSCAN run.
pub struct FnRegion<F> {
    n: usize,
    eps: f64,
    dist: F,
}

impl<F: FnMut(usize, usize) -> f64> FnRegion<F> {
    /// A scan over `n` points with pairwise distance `dist` and radius
    /// `eps`.
    pub fn new(n: usize, eps: f64, dist: F) -> Self {
        Self { n, eps, dist }
    }
}

impl<F: FnMut(usize, usize) -> f64> RegionQuery for FnRegion<F> {
    fn len(&self) -> usize {
        self.n
    }

    fn region(&mut self, p: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend((0..self.n).filter(|&q| (self.dist)(p, q) <= self.eps));
    }
}

/// Runs DBSCAN over `n` points with pairwise distance `dist`.
///
/// Returns one [`Label`] per point. Border points are assigned to the first
/// core point that reaches them (classic DBSCAN order-dependence; with the
/// tight eps used for perceptual hashes this is immaterial because clusters
/// are well separated).
///
/// Complexity is O(n²) distance evaluations — the same regime as the paper,
/// which clustered ~200k screenshots offline. For dhash workloads use
/// [`HammingIndex`](crate::index::HammingIndex) with [`dbscan_with`]: same
/// labels, sub-quadratic work.
pub fn dbscan<F>(n: usize, params: DbscanParams, dist: F) -> Vec<Label>
where
    F: FnMut(usize, usize) -> f64,
{
    dbscan_with(&mut FnRegion::new(n, params.eps, dist), params.min_pts)
}

/// Runs DBSCAN over an arbitrary [`RegionQuery`] oracle.
///
/// Each point receives **exactly one** region query over the whole run
/// (noise points when first scanned, cluster members when first labeled),
/// and the expansion queue never holds a point twice: candidates are
/// deduplicated on enqueue, bounding the queue at `n` entries instead of
/// one entry per (core, neighbour) edge.
pub fn dbscan_with<Q: RegionQuery + ?Sized>(query: &mut Q, min_pts: usize) -> Vec<Label> {
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;

    let n = query.len();
    let mut labels = vec![UNVISITED; n];
    let mut next_cluster = 0usize;
    let mut queue: Vec<usize> = Vec::new();
    let mut in_queue = vec![false; n];
    let mut nb: Vec<usize> = Vec::new();

    for p in 0..n {
        if labels[p] != UNVISITED {
            continue;
        }
        query.region(p, &mut nb);
        if nb.len() < min_pts {
            labels[p] = NOISE;
            continue;
        }
        let cid = next_cluster;
        next_cluster += 1;
        labels[p] = cid;
        for &q in nb.iter().filter(|&&q| q != p) {
            if !in_queue[q] {
                in_queue[q] = true;
                queue.push(q);
            }
        }
        while let Some(q) = queue.pop() {
            in_queue[q] = false;
            if labels[q] == NOISE {
                labels[q] = cid; // border point
                continue;
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cid;
            query.region(q, &mut nb);
            if nb.len() >= min_pts {
                for &r in &nb {
                    if (labels[r] == UNVISITED || labels[r] == NOISE) && !in_queue[r] {
                        in_queue[r] = true;
                        queue.push(r);
                    }
                }
            }
        }
    }

    labels
        .into_iter()
        .map(|l| if l == NOISE || l == UNVISITED { Label::Noise } else { Label::Cluster(l) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d1(points: &[f64]) -> impl FnMut(usize, usize) -> f64 + '_ {
        move |a, b| (points[a] - points[b]).abs()
    }

    #[test]
    fn empty_input() {
        let labels = dbscan(0, DbscanParams::default(), |_, _| 0.0);
        assert!(labels.is_empty());
    }

    #[test]
    fn single_point_is_noise_with_minpts_over_one() {
        let labels = dbscan(1, DbscanParams { eps: 1.0, min_pts: 2 }, |_, _| 0.0);
        assert_eq!(labels, vec![Label::Noise]);
    }

    #[test]
    fn single_point_cluster_with_minpts_one() {
        let labels = dbscan(1, DbscanParams { eps: 1.0, min_pts: 1 }, |_, _| 0.0);
        assert_eq!(labels, vec![Label::Cluster(0)]);
    }

    #[test]
    fn two_well_separated_blobs() {
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let labels = dbscan(pts.len(), DbscanParams { eps: 0.5, min_pts: 3 }, d1(&pts));
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
        assert!(labels.iter().all(|l| matches!(l, Label::Cluster(_))));
    }

    #[test]
    fn sparse_points_are_noise() {
        let pts = [0.0, 5.0, 10.0, 15.0];
        let labels = dbscan(pts.len(), DbscanParams { eps: 1.0, min_pts: 2 }, d1(&pts));
        assert!(labels.iter().all(|&l| l == Label::Noise));
    }

    #[test]
    fn chain_expansion_reaches_transitively() {
        // Points 0.0, 0.4, 0.8, ... each within eps of the next: DBSCAN's
        // density-reachability must merge the whole chain into one cluster.
        let pts: Vec<f64> = (0..10).map(|i| i as f64 * 0.4).collect();
        let labels = dbscan(pts.len(), DbscanParams { eps: 0.5, min_pts: 2 }, d1(&pts));
        let first = labels[0];
        assert!(matches!(first, Label::Cluster(_)));
        assert!(labels.iter().all(|&l| l == first));
    }

    #[test]
    fn border_point_attaches_to_cluster() {
        // Dense blob at 0 plus one point at 0.9 reachable from the blob edge
        // but itself not core.
        let pts = [0.0, 0.05, 0.1, 0.55];
        let labels = dbscan(pts.len(), DbscanParams { eps: 0.5, min_pts: 3 }, d1(&pts));
        assert_eq!(labels[3], labels[0], "border point must join the cluster");
    }

    #[test]
    fn cluster_ids_are_contiguous() {
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 20.0, 20.1, 20.2];
        let labels = dbscan(pts.len(), DbscanParams { eps: 0.5, min_pts: 3 }, d1(&pts));
        let mut ids: Vec<usize> = labels.iter().filter_map(|l| l.cluster_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    /// Regression guard for the region-query budget: every point must be
    /// region-queried exactly once over a full run, so the fallback path
    /// performs exactly n² distance evaluations — no matter how many core
    /// neighbours re-discover a point during expansion.
    #[test]
    fn one_region_query_per_point() {
        // One fully-connected blob: every point is a core point and every
        // expansion re-discovers every other point, the worst case for
        // duplicate enqueues.
        let n = 40;
        let mut dist_calls = 0usize;
        let labels = dbscan(n, DbscanParams { eps: 1.0, min_pts: 3 }, |_, _| {
            dist_calls += 1;
            0.0
        });
        assert!(labels.iter().all(|&l| l == Label::Cluster(0)));
        assert_eq!(dist_calls, n * n, "each point must be region-queried exactly once");

        // Mixed clusters + noise: still exactly one query (n dist calls)
        // per point.
        let pts: Vec<f64> = (0..30)
            .map(|i| if i < 20 { (i / 10) as f64 * 50.0 + (i % 10) as f64 * 0.3 } else { 1000.0 + i as f64 * 25.0 })
            .collect();
        let mut dist_calls = 0usize;
        let labels = dbscan(pts.len(), DbscanParams { eps: 0.5, min_pts: 3 }, |a, b| {
            dist_calls += 1;
            (pts[a] - pts[b]).abs()
        });
        assert_eq!(dist_calls, pts.len() * pts.len());
        assert!(labels.iter().any(|l| l.cluster_id().is_some()));
        assert!(labels.iter().any(|&l| l == Label::Noise));
    }

    /// The enqueue dedupe must not change labels: compare against a
    /// reference run that allows duplicate enqueues.
    #[test]
    fn dedupe_preserves_labels() {
        fn reference_dbscan(pts: &[f64], eps: f64, min_pts: usize) -> Vec<Label> {
            const UNVISITED: usize = usize::MAX;
            const NOISE: usize = usize::MAX - 1;
            let n = pts.len();
            let nbs = |p: usize| -> Vec<usize> {
                (0..n).filter(|&q| (pts[p] - pts[q]).abs() <= eps).collect()
            };
            let mut labels = vec![UNVISITED; n];
            let mut next = 0;
            for p in 0..n {
                if labels[p] != UNVISITED {
                    continue;
                }
                let nb = nbs(p);
                if nb.len() < min_pts {
                    labels[p] = NOISE;
                    continue;
                }
                let cid = next;
                next += 1;
                labels[p] = cid;
                let mut queue: Vec<usize> = nb.into_iter().filter(|&q| q != p).collect();
                while let Some(q) = queue.pop() {
                    if labels[q] == NOISE {
                        labels[q] = cid;
                        continue;
                    }
                    if labels[q] != UNVISITED {
                        continue;
                    }
                    labels[q] = cid;
                    let qn = nbs(q);
                    if qn.len() >= min_pts {
                        queue.extend(
                            qn.into_iter()
                                .filter(|&r| labels[r] == UNVISITED || labels[r] == NOISE),
                        );
                    }
                }
            }
            labels
                .into_iter()
                .map(|l| if l >= NOISE { Label::Noise } else { Label::Cluster(l) })
                .collect()
        }

        seacma_util::forall!(64, |rng| {
            let pts = rng.vec_of(0, 40, |r| r.f64_range(0.0, 30.0));
            let got = dbscan(pts.len(), DbscanParams { eps: 1.5, min_pts: 3 }, |a, b| {
                (pts[a] - pts[b]).abs()
            });
            assert_eq!(got, reference_dbscan(&pts, 1.5, 3));
        });
    }
}
