//! 128-bit difference hash (dhash).
//!
//! The paper (§3.3) computes "a perceptual hash, specifically a 128 bit
//! *difference hash* (dhash)" on every landing-page screenshot, following the
//! Hacker Factor construction: downscale, then record for each pixel whether
//! it is brighter than its right neighbour. We use a 17×8 luminance grid
//! (17 columns ⇒ 16 horizontal gradients per row × 8 rows = 128 bits).
//! Near-duplicate images — the same SE attack with rotated domain names,
//! timestamps or localized strings — differ in only a few bits.

use seacma_util::impl_json_newtype;
use std::fmt;

use crate::bitmap::Bitmap;

/// Number of gradient columns (downscale width is `HASH_COLS + 1`).
pub const HASH_COLS: usize = 16;
/// Number of gradient rows.
pub const HASH_ROWS: usize = 8;
/// Total hash width in bits.
pub const HASH_BITS: u32 = (HASH_COLS * HASH_ROWS) as u32;

/// A 128-bit perceptual difference hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dhash(pub u128);

impl fmt::Debug for Dhash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dhash({:032x})", self.0)
    }
}

impl fmt::Display for Dhash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Dhash {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Dhash> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Dhash)
    }
}

/// Computes the 128-bit difference hash of an image.
///
/// The bit at position `row * 16 + col` (bit 0 = most significant) is set
/// iff the downsampled pixel `(col, row)` is strictly brighter than
/// `(col + 1, row)`.
///
/// ```
/// use seacma_vision::bitmap::Bitmap;
/// use seacma_vision::dhash::{dhash128, hamming};
///
/// // A textured page (real screenshots are never flat-black).
/// let mut page = Bitmap::new(128, 80);
/// for y in 0..80 {
///     for x in 0..128 {
///         page.set(x, y, ((x * 3 + y * 2) % 230) as u8);
///     }
/// }
/// page.fill_rect(20, 20, 60, 30, 240);
/// let mut near_duplicate = page.clone();
/// near_duplicate.perturb(42, 4); // per-instance noise
///
/// let d = hamming(dhash128(&page), dhash128(&near_duplicate));
/// assert!(d <= 12, "near-duplicates stay inside the DBSCAN eps ball");
/// ```
pub fn dhash128(image: &Bitmap) -> Dhash {
    let small = image.resize(HASH_COLS + 1, HASH_ROWS);
    let mut bits: u128 = 0;
    for row in 0..HASH_ROWS {
        for col in 0..HASH_COLS {
            bits <<= 1;
            if small.get(col, row) > small.get(col + 1, row) {
                bits |= 1;
            }
        }
    }
    Dhash(bits)
}

/// Hamming distance between two hashes, in bits (0..=128).
#[inline]
pub fn hamming(a: Dhash, b: Dhash) -> u32 {
    (a.0 ^ b.0).count_ones()
}

/// Hamming distance normalized to `[0, 1]` — the distance the paper feeds
/// to DBSCAN with `eps = 0.1` (i.e. at most 12 of 128 differing bits).
#[inline]
pub fn normalized_hamming(a: Dhash, b: Dhash) -> f64 {
    f64::from(hamming(a, b)) / f64::from(HASH_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::Bitmap;

    fn gradient_image() -> Bitmap {
        let mut b = Bitmap::new(64, 32);
        for y in 0..32 {
            for x in 0..64 {
                b.set(x, y, ((x * 4 + y) % 256) as u8);
            }
        }
        b
    }

    #[test]
    fn constant_image_hashes_to_zero() {
        let b = Bitmap::from_pixels(32, 32, vec![100; 1024]);
        assert_eq!(dhash128(&b).0, 0);
    }

    #[test]
    fn hash_is_deterministic() {
        let b = gradient_image();
        assert_eq!(dhash128(&b), dhash128(&b));
    }

    #[test]
    fn hash_is_scale_invariant() {
        let b = gradient_image();
        let big = b.resize(128, 64);
        let d = hamming(dhash128(&b), dhash128(&big));
        assert!(d <= 8, "resizing shifted {d} bits");
    }

    #[test]
    fn small_noise_small_distance() {
        let b = gradient_image();
        let mut noisy = b.clone();
        noisy.perturb(7, 6);
        let d = hamming(dhash128(&b), dhash128(&noisy));
        assert!(d <= 12, "noise moved hash too far: {d} bits");
    }

    #[test]
    fn different_structures_far_apart() {
        // Left-bright vs right-bright: opposite gradients.
        let mut a = Bitmap::new(34, 8);
        let mut b = Bitmap::new(34, 8);
        for y in 0..8 {
            for x in 0..34 {
                a.set(x, y, (255 - x * 7) as u8);
                b.set(x, y, (x * 7) as u8);
            }
        }
        let d = hamming(dhash128(&a), dhash128(&b));
        assert!(d >= 100, "opposite gradients should differ in most bits, got {d}");
    }

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(Dhash(0), Dhash(0)), 0);
        assert_eq!(hamming(Dhash(0), Dhash(u128::MAX)), 128);
        assert_eq!(hamming(Dhash(0b1011), Dhash(0b0001)), 2);
    }

    #[test]
    fn normalized_hamming_range() {
        assert_eq!(normalized_hamming(Dhash(0), Dhash(u128::MAX)), 1.0);
        assert_eq!(normalized_hamming(Dhash(5), Dhash(5)), 0.0);
    }

    #[test]
    fn display_parse_roundtrip() {
        let h = Dhash(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let s = h.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(Dhash::parse(&s), Some(h));
        assert_eq!(Dhash::parse("xyz"), None);
        assert_eq!(Dhash::parse(&s[..31]), None);
    }
}
impl_json_newtype!(Dhash);
