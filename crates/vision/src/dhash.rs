//! 128-bit difference hash (dhash).
//!
//! The paper (§3.3) computes "a perceptual hash, specifically a 128 bit
//! *difference hash* (dhash)" on every landing-page screenshot, following the
//! Hacker Factor construction: downscale, then record for each pixel whether
//! it is brighter than its right neighbour. We use a 17×8 luminance grid
//! (17 columns ⇒ 16 horizontal gradients per row × 8 rows = 128 bits).
//! Near-duplicate images — the same SE attack with rotated domain names,
//! timestamps or localized strings — differ in only a few bits.

use seacma_util::impl_json_newtype;
use std::fmt;

use crate::bitmap::Bitmap;

/// Number of gradient columns (downscale width is `HASH_COLS + 1`).
pub const HASH_COLS: usize = 16;
/// Number of gradient rows.
pub const HASH_ROWS: usize = 8;
/// Total hash width in bits.
pub const HASH_BITS: u32 = (HASH_COLS * HASH_ROWS) as u32;

/// A 128-bit perceptual difference hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dhash(pub u128);

impl fmt::Debug for Dhash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dhash({:032x})", self.0)
    }
}

impl fmt::Display for Dhash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Dhash {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Dhash> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Dhash)
    }
}

/// Computes the 128-bit difference hash of an image.
///
/// The bit at position `row * 16 + col` (bit 0 = most significant) is set
/// iff the downsampled pixel `(col, row)` is strictly brighter than
/// `(col + 1, row)`.
///
/// ```
/// use seacma_vision::bitmap::Bitmap;
/// use seacma_vision::dhash::{dhash128, hamming};
///
/// // A textured page (real screenshots are never flat-black).
/// let mut page = Bitmap::new(128, 80);
/// for y in 0..80 {
///     for x in 0..128 {
///         page.set(x, y, ((x * 3 + y * 2) % 230) as u8);
///     }
/// }
/// page.fill_rect(20, 20, 60, 30, 240);
/// let mut near_duplicate = page.clone();
/// near_duplicate.perturb(42, 4); // per-instance noise
///
/// let d = hamming(dhash128(&page), dhash128(&near_duplicate));
/// assert!(d <= 12, "near-duplicates stay inside the DBSCAN eps ball");
/// ```
pub fn dhash128(image: &Bitmap) -> Dhash {
    let small = image.resize(HASH_COLS + 1, HASH_ROWS);
    let mut bits: u128 = 0;
    for row in 0..HASH_ROWS {
        for col in 0..HASH_COLS {
            bits <<= 1;
            if small.get(col, row) > small.get(col + 1, row) {
                bits |= 1;
            }
        }
    }
    Dhash(bits)
}

/// Computes `dhash128` of a noised copy of `clean` — bit-identical to
/// `dhash128(&{ let mut b = clean.clone(); b.perturb(seed, amplitude); b })`
/// — without materializing the noised bitmap.
///
/// [`Bitmap::perturb`] draws one xorshift64* delta per pixel in row-major
/// order, and [`Bitmap::resize`] area-averages each output cell over a
/// contiguous pixel range. Both passes are fused here: a single row-major
/// sweep draws each delta, clamps the pixel, and adds it straight into the
/// 17×8 accumulator grid. Because the per-axis source ranges of `resize`
/// are monotone, the cells covering a given coordinate form a contiguous
/// interval, precomputed per row and per column. The milker, which hashes
/// thousands of per-visit screenshots of the same cached clean render and
/// never looks at the pixels, calls this instead of render-then-hash.
pub fn dhash128_noised(clean: &Bitmap, seed: u64, amplitude: u8) -> Dhash {
    // Monomorphize the per-pixel modulo for the one amplitude the
    // simulated renderer actually uses (`INSTANCE_NOISE == 5` ⇒ span 11):
    // with the divisor a compile-time constant the compiler strength-
    // reduces the division to a multiply-shift, which dominates the
    // per-pixel cost otherwise.
    match amplitude {
        5 => noised_core(clean, seed, 5, |s| s % 11),
        _ => {
            let span = 2 * u64::from(amplitude) + 1;
            noised_core(clean, seed, amplitude, move |s| s % span)
        }
    }
}

#[inline(always)]
fn noised_core(clean: &Bitmap, seed: u64, amplitude: u8, rem: impl Fn(u64) -> u64) -> Dhash {
    let (w, h) = (clean.width(), clean.height());
    let (nw, nh) = (HASH_COLS + 1, HASH_ROWS);
    // Per-axis cell intervals: coordinate v is averaged into exactly the
    // cells [lo[v], hi[v]] (inclusive). The source ranges `resize` uses
    // are monotone per axis, so each coordinate's cells are contiguous —
    // overlapping by up to one cell when the scale factor is fractional.
    // A cell's pixel count is the product of its per-axis range lengths,
    // so counts need no accumulation in the pixel loop.
    let mut xlo = vec![u8::MAX; w];
    let mut xhi = vec![0u8; w];
    let mut xcnt = [0u32; HASH_COLS + 1];
    for ox in 0..nw {
        let x0 = ox * w / nw;
        let x1 = (((ox + 1) * w).div_ceil(nw)).max(x0 + 1).min(w);
        xcnt[ox] = (x1 - x0) as u32;
        for x in x0..x1 {
            xlo[x] = xlo[x].min(ox as u8);
            xhi[x] = ox as u8;
        }
    }
    let mut ylo = vec![u8::MAX; h];
    let mut yhi = vec![0u8; h];
    let mut ycnt = [0u32; HASH_ROWS];
    for oy in 0..nh {
        let y0 = oy * h / nh;
        let y1 = (((oy + 1) * h).div_ceil(nh)).max(y0 + 1).min(h);
        ycnt[oy] = (y1 - y0) as u32;
        for y in y0..y1 {
            ylo[y] = ylo[y].min(oy as u8);
            yhi[y] = oy as u8;
        }
    }

    let pixels = clean.pixels();
    let amp = i16::from(amplitude);
    let mut sums = [[0u32; HASH_COLS + 1]; HASH_ROWS];
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    for y in 0..h {
        // Accumulate the row into per-column bins, then fold the row total
        // into each covering cell row once — the per-pixel work is just
        // the noise draw, the clamp and one or two bin adds.
        let mut row = [0u32; HASH_COLS + 1];
        for (x, &p) in pixels[y * w..(y + 1) * w].iter().enumerate() {
            // Same stream as `perturb`: one xorshift64* step per pixel,
            // row-major, whether or not the pixel lands in any cell.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let delta = rem(state) as i16 - amp;
            let v = u32::from((i16::from(p) + delta).clamp(0, 255) as u8);
            for ox in xlo[x]..=xhi[x] {
                row[usize::from(ox)] += v;
            }
        }
        for oy in ylo[y]..=yhi[y] {
            for (s, r) in sums[usize::from(oy)].iter_mut().zip(row) {
                *s += r;
            }
        }
    }

    let mut bits: u128 = 0;
    for r in 0..HASH_ROWS {
        for col in 0..HASH_COLS {
            bits <<= 1;
            let a = sums[r][col] / (ycnt[r] * xcnt[col]).max(1);
            let b = sums[r][col + 1] / (ycnt[r] * xcnt[col + 1]).max(1);
            if a > b {
                bits |= 1;
            }
        }
    }
    Dhash(bits)
}

/// Hamming distance between two hashes, in bits (0..=128).
#[inline]
pub fn hamming(a: Dhash, b: Dhash) -> u32 {
    (a.0 ^ b.0).count_ones()
}

/// Hamming distance normalized to `[0, 1]` — the distance the paper feeds
/// to DBSCAN with `eps = 0.1` (i.e. at most 12 of 128 differing bits).
#[inline]
pub fn normalized_hamming(a: Dhash, b: Dhash) -> f64 {
    f64::from(hamming(a, b)) / f64::from(HASH_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::Bitmap;

    fn gradient_image() -> Bitmap {
        let mut b = Bitmap::new(64, 32);
        for y in 0..32 {
            for x in 0..64 {
                b.set(x, y, ((x * 4 + y) % 256) as u8);
            }
        }
        b
    }

    #[test]
    fn constant_image_hashes_to_zero() {
        let b = Bitmap::from_pixels(32, 32, vec![100; 1024]);
        assert_eq!(dhash128(&b).0, 0);
    }

    #[test]
    fn hash_is_deterministic() {
        let b = gradient_image();
        assert_eq!(dhash128(&b), dhash128(&b));
    }

    #[test]
    fn hash_is_scale_invariant() {
        let b = gradient_image();
        let big = b.resize(128, 64);
        let d = hamming(dhash128(&b), dhash128(&big));
        assert!(d <= 8, "resizing shifted {d} bits");
    }

    #[test]
    fn small_noise_small_distance() {
        let b = gradient_image();
        let mut noisy = b.clone();
        noisy.perturb(7, 6);
        let d = hamming(dhash128(&b), dhash128(&noisy));
        assert!(d <= 12, "noise moved hash too far: {d} bits");
    }

    #[test]
    fn different_structures_far_apart() {
        // Left-bright vs right-bright: opposite gradients.
        let mut a = Bitmap::new(34, 8);
        let mut b = Bitmap::new(34, 8);
        for y in 0..8 {
            for x in 0..34 {
                a.set(x, y, (255 - x * 7) as u8);
                b.set(x, y, (x * 7) as u8);
            }
        }
        let d = hamming(dhash128(&a), dhash128(&b));
        assert!(d >= 100, "opposite gradients should differ in most bits, got {d}");
    }

    #[test]
    fn noised_hash_equals_perturb_then_hash() {
        // The fused pass must be bit-identical to the materialized one on
        // arbitrary bitmaps — odd sizes, smaller than the hash grid, flat
        // and textured content, zero and large amplitudes.
        seacma_util::forall!(150, |rng| {
            let w = rng.range(1, 190);
            let h = rng.range(1, 120);
            let base = rng.below(256) as usize;
            let stride = rng.range(0, 9);
            let mut clean = Bitmap::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    clean.set(x, y, ((base + x * stride + y * 2) % 256) as u8);
                }
            }
            let seed = rng.range_u64(0, u64::MAX);
            let amplitude = rng.below(40) as u8;
            let mut noised = clean.clone();
            noised.perturb(seed, amplitude);
            assert_eq!(
                dhash128_noised(&clean, seed, amplitude),
                dhash128(&noised),
                "fused/materialized divergence at {w}x{h} seed={seed} amp={amplitude}"
            );
        });
    }

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(Dhash(0), Dhash(0)), 0);
        assert_eq!(hamming(Dhash(0), Dhash(u128::MAX)), 128);
        assert_eq!(hamming(Dhash(0b1011), Dhash(0b0001)), 2);
    }

    #[test]
    fn normalized_hamming_range() {
        assert_eq!(normalized_hamming(Dhash(0), Dhash(u128::MAX)), 1.0);
        assert_eq!(normalized_hamming(Dhash(5), Dhash(5)), 0.0);
    }

    #[test]
    fn display_parse_roundtrip() {
        let h = Dhash(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let s = h.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(Dhash::parse(&s), Some(h));
        assert_eq!(Dhash::parse("xyz"), None);
        assert_eq!(Dhash::parse(&s[..31]), None);
    }
}
impl_json_newtype!(Dhash);
