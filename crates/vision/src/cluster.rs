//! SEACMA campaign clustering (paper §3.3, step ⑤).
//!
//! Input: one `(dhash, e2LD)` pair per landing-page screenshot. Output:
//! clusters of visually near-identical pages, with clusters spanning fewer
//! than `theta_c` distinct effective second-level domains discarded —
//! hosting the same visual attack on many domains is the signature of a
//! blacklist-evading campaign, while benign ad campaigns have no incentive
//! to rotate domains.

use std::collections::BTreeSet;

use seacma_util::impl_json_struct;
use seacma_util::sym::{Sym, SymbolArena};

use crate::dbscan::{dbscan_with, Label};
use crate::dhash::Dhash;
use crate::index::HammingIndex;

/// One screenshot observation: the perceptual hash plus the effective
/// second-level domain of the page it was taken on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScreenshotPoint {
    /// 128-bit difference hash of the screenshot.
    pub dhash: Dhash,
    /// Effective second-level domain (public-suffix aware), e.g.
    /// `live6nmld10.club`.
    pub e2ld: String,
}

impl ScreenshotPoint {
    /// Convenience constructor.
    pub fn new(dhash: Dhash, e2ld: impl Into<String>) -> Self {
        Self { dhash, e2ld: e2ld.into() }
    }
}

/// Clustering parameters (paper defaults: `eps = 0.1`, `min_pts = 3`,
/// `theta_c = 5`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// DBSCAN neighbourhood radius over *normalized* Hamming distance.
    pub eps: f64,
    /// DBSCAN MinPts.
    pub min_pts: usize,
    /// Minimum number of distinct e2LDs for a cluster to be kept as a
    /// candidate SEACMA campaign (θc).
    pub theta_c: usize,
}

impl Default for ClusterParams {
    fn default() -> Self {
        Self { eps: 0.1, min_pts: 3, theta_c: 5 }
    }
}

/// One cluster of near-duplicate screenshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenshotCluster {
    /// Indices into the input slice.
    pub members: Vec<usize>,
    /// Distinct e2LDs spanned by the cluster, sorted.
    pub domains: BTreeSet<String>,
    /// The member whose hash has minimal total distance to the rest — used
    /// as the cluster's visual representative (e.g. for milking comparison).
    pub representative: usize,
}

impl ScreenshotCluster {
    /// Number of screenshots in the cluster.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty (never true for clusters produced by
    /// [`cluster_screenshots`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of distinct e2LDs.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }
}

/// Result of the clustering + θc filtering step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenshotClusters {
    /// Clusters that span ≥ θc distinct e2LDs: candidate SEACMA campaigns.
    pub campaigns: Vec<ScreenshotCluster>,
    /// Clusters filtered out by θc (dense but hosted on few domains).
    pub filtered: Vec<ScreenshotCluster>,
    /// Number of points DBSCAN marked as noise.
    pub noise: usize,
}

impl ScreenshotClusters {
    /// Total clusters found before θc filtering.
    pub fn total_clusters(&self) -> usize {
        self.campaigns.len() + self.filtered.len()
    }
}

/// Clusters `(dhash, e2LD)` pairs with DBSCAN over normalized Hamming
/// distance and applies the θc domain-count filter.
///
/// Deduplicates exact duplicate pairs first (the paper clusters the set of
/// *distinct* pairs), but reports clusters in terms of the original indices,
/// mapping every duplicate back to its cluster.
///
/// ```
/// use seacma_vision::cluster::{cluster_screenshots, ClusterParams, ScreenshotPoint};
/// use seacma_vision::dhash::Dhash;
///
/// // One campaign: near-identical hashes across 6 rotating domains.
/// let points: Vec<ScreenshotPoint> = (0..12)
///     .map(|i| ScreenshotPoint::new(Dhash(0xFACE ^ (1 << (i % 3))), format!("evil{}.club", i % 6)))
///     .collect();
/// let result = cluster_screenshots(&points, ClusterParams::default());
/// assert_eq!(result.campaigns.len(), 1);
/// assert_eq!(result.campaigns[0].domain_count(), 6);
/// ```
pub fn cluster_screenshots(points: &[ScreenshotPoint], params: ClusterParams) -> ScreenshotClusters {
    cluster_screenshots_parallel(points, params, 1)
}

/// [`cluster_screenshots`] with index construction and region queries
/// sharded across `workers` OS threads (`0` ⇒ available parallelism, the
/// crawler-farm convention; `1` ⇒ fully sequential).
///
/// The output is **byte-identical** for every worker count: workers only
/// precompute the per-point neighbour lists (each an independent pure
/// function of the read-only index — see
/// [`HammingIndex::regions_parallel`]), and the DBSCAN sweep, cluster-id
/// assignment and representative selection run sequentially over those
/// lists.
pub fn cluster_screenshots_parallel(
    points: &[ScreenshotPoint],
    params: ClusterParams,
    workers: usize,
) -> ScreenshotClusters {
    // Dedup identical (dhash, e2ld) pairs, remembering all original indices.
    let mut uniq: Vec<(Dhash, &str)> = Vec::new();
    let mut originals: Vec<Vec<u32>> = Vec::new();
    {
        let mut index: std::collections::HashMap<(&Dhash, &str), usize> =
            std::collections::HashMap::new();
        for (i, p) in points.iter().enumerate() {
            match index.entry((&p.dhash, p.e2ld.as_str())) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    originals[*e.get()].push(i as u32)
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(uniq.len());
                    uniq.push((p.dhash, p.e2ld.as_str()));
                    originals.push(vec![i as u32]);
                }
            }
        }
    }

    // Indexed region queries (exact — identical labels to the naive O(n²)
    // scan; see DESIGN.md "Hamming neighbour index").
    let hashes: Vec<Dhash> = uniq.iter().map(|&(d, _)| d).collect();
    let labels = if workers == 1 {
        let mut index = HammingIndex::build(&hashes, params.eps);
        dbscan_with(&mut index, params.min_pts)
    } else {
        let index = HammingIndex::build_parallel(&hashes, params.eps, workers);
        let mut regions = index.regions_parallel(workers);
        dbscan_with(&mut regions, params.min_pts)
    };

    assemble_clusters(&uniq, &originals, &labels, params.theta_c)
}

/// [`cluster_screenshots_parallel`] over struct-of-arrays input: points
/// arrive as parallel `dhash`/`e2LD-symbol` columns plus the arena that
/// assigned the symbols, instead of a slice of point structs.
///
/// The output is **byte-identical** to running the string path over the
/// resolved points: symbols are in bijection with their strings within
/// one arena, so deduplicating `(dhash, Sym)` pairs keeps exactly the
/// `(dhash, e2LD)` pairs the string path keeps, in the same
/// first-occurrence order, and the DBSCAN stage only ever looks at the
/// hash column. This is the pipeline's hot path: the dedup key is
/// `(u128, u32)` — no string hashing, no per-point allocation.
pub fn cluster_sym_columns_parallel(
    dhashes: &[Dhash],
    e2lds: &[Sym],
    arena: &SymbolArena,
    params: ClusterParams,
    workers: usize,
) -> ScreenshotClusters {
    assert_eq!(dhashes.len(), e2lds.len(), "column lengths must agree");
    let mut uniq_hashes: Vec<Dhash> = Vec::new();
    let mut uniq_syms: Vec<Sym> = Vec::new();
    let mut originals: Vec<Vec<u32>> = Vec::new();
    {
        let mut index: std::collections::HashMap<(u128, Sym), usize> =
            std::collections::HashMap::new();
        for (i, (&d, &s)) in dhashes.iter().zip(e2lds).enumerate() {
            match index.entry((d.0, s)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    originals[*e.get()].push(i as u32)
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(uniq_hashes.len());
                    uniq_hashes.push(d);
                    uniq_syms.push(s);
                    originals.push(vec![i as u32]);
                }
            }
        }
    }

    let labels = if workers == 1 {
        let mut index = HammingIndex::build(&uniq_hashes, params.eps);
        dbscan_with(&mut index, params.min_pts)
    } else {
        let index = HammingIndex::build_parallel(&uniq_hashes, params.eps, workers);
        let mut regions = index.regions_parallel(workers);
        dbscan_with(&mut regions, params.min_pts)
    };

    let uniq: Vec<(Dhash, &str)> = uniq_hashes
        .iter()
        .zip(&uniq_syms)
        .map(|(&d, &s)| (d, arena.resolve(s)))
        .collect();
    assemble_clusters(&uniq, &originals, &labels, params.theta_c)
}

/// Turns DBSCAN labels over *deduplicated* points into the final clusters
/// structure: groups by cluster id, elects the medoid representative,
/// maps unique points back to original indices, applies the θc filter and
/// the deterministic (size-descending, first-member) ordering.
///
/// `uniq[u]` is the `u`-th distinct `(dhash, e2LD)` pair in first-occurrence
/// order; `originals[u]` lists the original indices carrying it, ascending.
/// Shared by the batch path above and the incremental tracker
/// (`seacma-tracker`), so both produce structurally identical output for
/// identical labels — the exactness gate then reduces to label equality.
pub fn assemble_clusters(
    uniq: &[(Dhash, &str)],
    originals: &[Vec<u32>],
    labels: &[Label],
    theta_c: usize,
) -> ScreenshotClusters {
    let n_clusters = labels.iter().filter_map(|l| l.cluster_id()).max().map_or(0, |m| m + 1);
    let mut raw: Vec<Vec<usize>> = vec![Vec::new(); n_clusters]; // unique-point indices
    let mut noise = 0usize;
    for (u, label) in labels.iter().enumerate() {
        match label {
            Label::Cluster(id) => raw[*id].push(u),
            Label::Noise => noise += originals[u].len(),
        }
    }

    let mut campaigns = Vec::new();
    let mut filtered = Vec::new();
    for members_u in raw {
        let domains: BTreeSet<String> =
            members_u.iter().map(|&u| uniq[u].1.to_owned()).collect();
        // Representative: medoid by total Hamming distance among unique
        // members; ties break to the lowest unique-point index, so the
        // choice is a pure function of the member set (parallel and
        // sequential runs agree bit for bit).
        let rep_u = *members_u
            .iter()
            .min_by_key(|&&a| {
                let total: u64 = members_u
                    .iter()
                    .map(|&b| u64::from(crate::dhash::hamming(uniq[a].0, uniq[b].0)))
                    .sum();
                (total, a)
            })
            .expect("DBSCAN clusters are nonempty");
        let members: Vec<usize> =
            members_u.iter().flat_map(|&u| originals[u].iter().map(|&i| i as usize)).collect();
        let cluster = ScreenshotCluster {
            representative: originals[rep_u][0] as usize,
            members,
            domains,
        };
        if cluster.domain_count() >= theta_c {
            campaigns.push(cluster);
        } else {
            filtered.push(cluster);
        }
    }

    // Deterministic ordering: biggest campaigns first, then by first member.
    campaigns.sort_by_key(|c| (std::cmp::Reverse(c.len()), c.members[0]));
    filtered.sort_by_key(|c| (std::cmp::Reverse(c.len()), c.members[0]));

    ScreenshotClusters { campaigns, filtered, noise }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds `count` near-duplicate hashes around `base` (flipping < 4 bits
    /// each) across `n_domains` distinct domains.
    fn synthetic_campaign(base: u128, count: usize, n_domains: usize, tag: &str) -> Vec<ScreenshotPoint> {
        (0..count)
            .map(|i| {
                let wiggle = 1u128 << (i % 3);
                ScreenshotPoint::new(Dhash(base ^ wiggle), format!("{tag}{}.xyz", i % n_domains))
            })
            .collect()
    }

    #[test]
    fn campaign_across_many_domains_survives() {
        let pts = synthetic_campaign(0xAAAA_BBBB_CCCC_DDDD, 20, 8, "evil");
        let out = cluster_screenshots(&pts, ClusterParams::default());
        assert_eq!(out.campaigns.len(), 1);
        assert_eq!(out.campaigns[0].domain_count(), 8);
        assert_eq!(out.campaigns[0].len(), 20);
        assert!(out.filtered.is_empty());
    }

    #[test]
    fn few_domain_cluster_is_filtered() {
        let pts = synthetic_campaign(0x1234_5678, 12, 2, "benign");
        let out = cluster_screenshots(&pts, ClusterParams::default());
        assert!(out.campaigns.is_empty());
        assert_eq!(out.filtered.len(), 1);
        assert_eq!(out.filtered[0].domain_count(), 2);
    }

    #[test]
    fn distinct_campaigns_do_not_merge() {
        // Two bases ~64 bits apart.
        let mut pts = synthetic_campaign(0, 10, 6, "a");
        pts.extend(synthetic_campaign(u128::MAX << 32, 10, 6, "b"));
        let out = cluster_screenshots(&pts, ClusterParams::default());
        assert_eq!(out.campaigns.len(), 2);
        for c in &out.campaigns {
            assert_eq!(c.len(), 10);
        }
    }

    #[test]
    fn isolated_screenshots_are_noise() {
        // Widely-spaced hashes (pairwise Hamming 32 > eps·128), min_pts = 3
        // → all noise.
        let pts: Vec<ScreenshotPoint> = (0..6)
            .map(|i| ScreenshotPoint::new(Dhash(0xFFFFu128 << (i * 20)), format!("d{i}.com")))
            .collect();
        let out = cluster_screenshots(&pts, ClusterParams::default());
        assert_eq!(out.total_clusters(), 0);
        assert_eq!(out.noise, 6);
    }

    #[test]
    fn duplicates_map_back_to_original_indices() {
        let mut pts = synthetic_campaign(0xFEED, 9, 6, "x");
        let dup = pts[0].clone();
        pts.push(dup); // exact duplicate of index 0
        let out = cluster_screenshots(&pts, ClusterParams::default());
        assert_eq!(out.campaigns.len(), 1);
        assert_eq!(out.campaigns[0].len(), 10, "duplicate must be counted");
        assert!(out.campaigns[0].members.contains(&9));
    }

    #[test]
    fn representative_is_a_member() {
        let pts = synthetic_campaign(0xDEAD_BEEF, 15, 7, "r");
        let out = cluster_screenshots(&pts, ClusterParams::default());
        let c = &out.campaigns[0];
        assert!(c.members.contains(&c.representative));
    }

    #[test]
    fn empty_input_ok() {
        let out = cluster_screenshots(&[], ClusterParams::default());
        assert_eq!(out.total_clusters(), 0);
        assert_eq!(out.noise, 0);
    }

    #[test]
    fn representative_ties_break_to_lowest_index() {
        // Four hashes at the corners of a Hamming square: every member has
        // the same total distance (1 + 1 + 2 = 4), so the medoid is a
        // four-way tie and the representative must be the lowest index.
        let hashes = [0u128, 0b01, 0b10, 0b11];
        let pts: Vec<ScreenshotPoint> = hashes
            .iter()
            .enumerate()
            .map(|(i, &h)| ScreenshotPoint::new(Dhash(h), format!("tie{i}.com")))
            .collect();
        let params = ClusterParams { theta_c: 4, ..Default::default() };
        let out = cluster_screenshots(&pts, params);
        assert_eq!(out.campaigns.len(), 1);
        assert_eq!(out.campaigns[0].representative, 0, "tie must break to lowest index");

        // Same set reversed: the lowest *original index* now holds the
        // hash that used to be last — still index 0.
        let rev: Vec<ScreenshotPoint> = pts.iter().rev().cloned().collect();
        let out = cluster_screenshots(&rev, params);
        assert_eq!(out.campaigns[0].representative, 0);
    }

    #[test]
    fn parallel_clustering_is_byte_identical() {
        // A corpus with campaigns, a θc-filtered cluster, noise and exact
        // duplicates — every code path the parallel run must reproduce.
        let mut pts = synthetic_campaign(0xAAAA_BBBB_CCCC_DDDD, 20, 8, "evil");
        pts.extend(synthetic_campaign(0x1234_5678, 12, 2, "benign"));
        pts.extend((0..6).map(|i| {
            ScreenshotPoint::new(Dhash(0xFFFFu128 << (i * 20)), format!("n{i}.com"))
        }));
        let dup = pts[0].clone();
        pts.push(dup);

        let seq = cluster_screenshots(&pts, ClusterParams::default());
        for workers in [0, 2, 3, 7] {
            let par = cluster_screenshots_parallel(&pts, ClusterParams::default(), workers);
            assert_eq!(par.campaigns, seq.campaigns, "workers={workers}");
            assert_eq!(par.filtered, seq.filtered, "workers={workers}");
            assert_eq!(par.noise, seq.noise, "workers={workers}");
        }
    }

    #[test]
    fn sym_columns_match_string_path() {
        use seacma_util::forall;
        forall!(64, |g| {
            // Random mix of planted near-duplicates, noise and exact
            // duplicates over a small domain alphabet.
            let base = g.u128();
            let n = g.range(0, 60);
            let pts: Vec<ScreenshotPoint> = (0..n)
                .map(|_| {
                    let d = if g.bool(0.6) {
                        Dhash(base ^ (1u128 << g.range(0, 5)))
                    } else {
                        Dhash(g.u128())
                    };
                    ScreenshotPoint::new(d, format!("d{}.com", g.range(0, 7)))
                })
                .collect();
            let mut arena = SymbolArena::new();
            let dhashes: Vec<Dhash> = pts.iter().map(|p| p.dhash).collect();
            let e2lds: Vec<Sym> = pts.iter().map(|p| arena.intern(&p.e2ld)).collect();
            let workers = g.range(1, 5);
            let by_string = cluster_screenshots_parallel(&pts, ClusterParams::default(), workers);
            let by_sym = cluster_sym_columns_parallel(
                &dhashes,
                &e2lds,
                &arena,
                ClusterParams::default(),
                workers,
            );
            assert_eq!(by_sym, by_string);
        });
    }

    #[test]
    fn theta_c_boundary_is_inclusive() {
        let params = ClusterParams { theta_c: 5, ..Default::default() };
        let pts = synthetic_campaign(0xBEEF, 10, 5, "edge");
        let out = cluster_screenshots(&pts, params);
        assert_eq!(out.campaigns.len(), 1, "exactly theta_c domains must pass");
    }
}
impl_json_struct!(ScreenshotPoint { dhash, e2ld });
impl_json_struct!(ClusterParams { eps, min_pts, theta_c });
impl_json_struct!(ScreenshotCluster { members, domains, representative });
impl_json_struct!(ScreenshotClusters { campaigns, filtered, noise });
