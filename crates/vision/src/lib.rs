//! # seacma-vision
//!
//! Visual-analysis substrate for the SEACMA campaign-discovery pipeline
//! (Vadrevu & Perdisci, IMC 2019, §3.3).
//!
//! The paper clusters screenshots of third-party landing pages reached by
//! clicking on ads. Pages that show the *same* social-engineering attack are
//! visually near-identical even though they are hosted on many throw-away
//! domains; benign pages are visually diverse. The pipeline therefore:
//!
//! 1. takes a screenshot of every landing page ([`Bitmap`]),
//! 2. computes a 128-bit *difference hash* ([`dhash128`]),
//! 3. pairs each hash with the page's effective second-level domain and
//!    clusters the pairs with DBSCAN over Hamming distance
//!    ([`cluster_screenshots`]),
//! 4. keeps only clusters spanning at least `theta_c` distinct domains —
//!    the signature of a blacklist-evading campaign ([`ClusterParams`]).
//!
//! Everything in this crate is pure and deterministic; it has no knowledge
//! of the simulator and can be reused on real screenshot corpora.
//!
//! Clustering runs sub-quadratically: region queries go through the exact
//! pigeonhole-banded [`HammingIndex`] (see [`index`]) rather than an O(n²)
//! pairwise scan, and [`cluster_screenshots_parallel`] shards index
//! construction and candidate verification across OS threads while keeping
//! cluster ids and representatives byte-identical to the sequential run.

#![deny(missing_docs)]

pub mod bitmap;
pub mod cluster;
pub mod dbscan;
pub mod dhash;
pub mod index;

pub use bitmap::Bitmap;
pub use cluster::{
    cluster_screenshots, cluster_screenshots_parallel, ClusterParams, ScreenshotClusters,
    ScreenshotPoint,
};
pub use dbscan::{dbscan, dbscan_with, DbscanParams, Label, RegionQuery};
pub use dhash::{dhash128, hamming, normalized_hamming, Dhash};
pub use index::{HammingIndex, PrecomputedRegions};
