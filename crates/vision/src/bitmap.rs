//! Grayscale screenshot bitmaps.
//!
//! The paper's crawlers capture full-page screenshots through DevTools. Our
//! simulated browser renders each page's *visual template* into a small
//! grayscale raster. 128×80 is plenty: the perceptual hash downsamples to
//! 17×8 anyway, and the clustering only needs near-duplicate structure to
//! survive, not pixel fidelity.

use seacma_util::impl_json_struct;
use std::fmt;

/// Default screenshot width used by the simulated browser.
pub const DEFAULT_WIDTH: usize = 128;
/// Default screenshot height used by the simulated browser.
pub const DEFAULT_HEIGHT: usize = 80;

/// A row-major 8-bit grayscale image.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap({}x{})", self.width, self.height)
    }
}

impl Bitmap {
    /// Creates an all-black bitmap.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "bitmap dimensions must be nonzero");
        Self { width, height, pixels: vec![0; width * height] }
    }

    /// Creates a bitmap from raw row-major pixels.
    ///
    /// # Panics
    /// Panics if `pixels.len() != width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        assert!(width > 0 && height > 0, "bitmap dimensions must be nonzero");
        Self { width, height, pixels }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw pixel buffer, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`; out-of-bounds writes are ignored so that
    /// procedural drawing code does not need edge checks.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = value;
        }
    }

    /// Fills the axis-aligned rectangle `[x, x+w) × [y, y+h)`, clipped to the
    /// image bounds.
    pub fn fill_rect(&mut self, x: usize, y: usize, w: usize, h: usize, value: u8) {
        let x1 = (x + w).min(self.width);
        let y1 = (y + h).min(self.height);
        for yy in y.min(self.height)..y1 {
            let row = yy * self.width;
            self.pixels[row + x.min(self.width)..row + x1].fill(value);
        }
    }

    /// Draws a 1-pixel rectangle outline, clipped to bounds.
    pub fn stroke_rect(&mut self, x: usize, y: usize, w: usize, h: usize, value: u8) {
        if w == 0 || h == 0 {
            return;
        }
        self.fill_rect(x, y, w, 1, value);
        self.fill_rect(x, y + h.saturating_sub(1), w, 1, value);
        self.fill_rect(x, y, 1, h, value);
        self.fill_rect(x + w.saturating_sub(1), y, 1, h, value);
    }

    /// Draws horizontal "text" bars: a crude stand-in for lines of text that
    /// gives pages with different copy different gradients.
    pub fn text_block(&mut self, x: usize, y: usize, w: usize, lines: usize, value: u8) {
        for i in 0..lines {
            let yy = y + i * 3;
            // Vary line length so the block is not a uniform rectangle.
            let lw = w - (i * 7) % (w / 2 + 1);
            self.fill_rect(x, yy, lw, 1, value);
        }
    }

    /// Area-averaged downsample to `(nw, nh)`. Used by the perceptual hash.
    pub fn resize(&self, nw: usize, nh: usize) -> Bitmap {
        assert!(nw > 0 && nh > 0, "resize dimensions must be nonzero");
        let mut out = Bitmap::new(nw, nh);
        for oy in 0..nh {
            let y0 = oy * self.height / nh;
            let y1 = (((oy + 1) * self.height).div_ceil(nh)).max(y0 + 1).min(self.height);
            for ox in 0..nw {
                let x0 = ox * self.width / nw;
                let x1 = (((ox + 1) * self.width).div_ceil(nw)).max(x0 + 1).min(self.width);
                let mut sum: u32 = 0;
                let mut n: u32 = 0;
                for y in y0..y1 {
                    for x in x0..x1 {
                        sum += u32::from(self.pixels[y * self.width + x]);
                        n += 1;
                    }
                }
                out.pixels[oy * nw + ox] = (sum / n.max(1)) as u8;
            }
        }
        out
    }

    /// Adds deterministic per-pixel noise with the given amplitude, keyed by
    /// `seed`. Models the small visual differences (timestamps, rotating
    /// product names, localized strings) between instances of one campaign.
    pub fn perturb(&mut self, seed: u64, amplitude: u8) {
        if amplitude == 0 {
            return;
        }
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        for p in &mut self.pixels {
            // xorshift64* — cheap, deterministic, good enough for noise.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let delta = (state % (2 * u64::from(amplitude) + 1)) as i16 - i16::from(amplitude);
            *p = (i16::from(*p) + delta).clamp(0, 255) as u8;
        }
    }

    /// Mean absolute per-pixel difference; `None` if dimensions differ.
    pub fn mean_abs_diff(&self, other: &Bitmap) -> Option<f64> {
        if self.width != other.width || self.height != other.height {
            return None;
        }
        let total: u64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(a, b)| u64::from(a.abs_diff(*b)))
            .sum();
        Some(total as f64 / self.pixels.len() as f64)
    }

    /// Serializes to binary PGM (P5) — used by the figure-5/6 screenshot
    /// gallery binary so the campaign imagery can be inspected with any
    /// image viewer.
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Renders the bitmap as ASCII art (one char per pixel block), useful in
    /// terminal demos and golden tests.
    pub fn to_ascii(&self, cols: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let rows = (cols * self.height / self.width).max(1);
        let small = self.resize(cols, rows);
        let mut s = String::with_capacity((cols + 1) * rows);
        for y in 0..rows {
            for x in 0..cols {
                let v = small.get(x, y) as usize * (RAMP.len() - 1) / 255;
                s.push(RAMP[v] as char);
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let b = Bitmap::new(4, 3);
        assert_eq!(b.width(), 4);
        assert_eq!(b.height(), 3);
        assert!(b.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_panic() {
        let _ = Bitmap::new(0, 4);
    }

    #[test]
    fn from_pixels_roundtrip() {
        let b = Bitmap::from_pixels(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(b.get(0, 0), 1);
        assert_eq!(b.get(1, 0), 2);
        assert_eq!(b.get(0, 1), 3);
        assert_eq!(b.get(1, 1), 4);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_pixels_len_mismatch_panics() {
        let _ = Bitmap::from_pixels(2, 2, vec![0; 3]);
    }

    #[test]
    fn fill_rect_clips() {
        let mut b = Bitmap::new(4, 4);
        b.fill_rect(2, 2, 10, 10, 200);
        assert_eq!(b.get(3, 3), 200);
        assert_eq!(b.get(1, 1), 0);
    }

    #[test]
    fn set_out_of_bounds_ignored() {
        let mut b = Bitmap::new(2, 2);
        b.set(5, 5, 255); // must not panic
        assert!(b.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn stroke_rect_outline_only() {
        let mut b = Bitmap::new(8, 8);
        b.stroke_rect(1, 1, 6, 6, 255);
        assert_eq!(b.get(1, 1), 255);
        assert_eq!(b.get(6, 6), 255);
        assert_eq!(b.get(3, 3), 0, "interior must stay empty");
    }

    #[test]
    fn resize_preserves_constant_image() {
        let b = Bitmap::from_pixels(8, 8, vec![77; 64]);
        let s = b.resize(3, 3);
        assert!(s.pixels().iter().all(|&p| p == 77));
    }

    #[test]
    fn resize_upscale_works() {
        let b = Bitmap::from_pixels(2, 1, vec![0, 255]);
        let s = b.resize(4, 2);
        assert_eq!(s.get(0, 0), 0);
        assert_eq!(s.get(3, 1), 255);
    }

    #[test]
    fn perturb_is_deterministic_and_bounded() {
        let base = Bitmap::from_pixels(16, 16, vec![128; 256]);
        let mut a = base.clone();
        let mut b = base.clone();
        a.perturb(42, 10);
        b.perturb(42, 10);
        assert_eq!(a, b);
        let diff = base.mean_abs_diff(&a).unwrap();
        assert!(diff <= 10.0, "noise amplitude exceeded: {diff}");
        let mut c = base.clone();
        c.perturb(43, 10);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn perturb_zero_amplitude_is_identity() {
        let mut a = Bitmap::from_pixels(4, 4, (0..16).collect());
        let orig = a.clone();
        a.perturb(7, 0);
        assert_eq!(a, orig);
    }

    #[test]
    fn mean_abs_diff_dimension_mismatch() {
        let a = Bitmap::new(2, 2);
        let b = Bitmap::new(3, 2);
        assert!(a.mean_abs_diff(&b).is_none());
    }

    #[test]
    fn pgm_header_and_size() {
        let b = Bitmap::new(5, 4);
        let pgm = b.to_pgm();
        assert!(pgm.starts_with(b"P5\n5 4\n255\n"));
        assert_eq!(pgm.len(), b"P5\n5 4\n255\n".len() + 20);
    }

    #[test]
    fn ascii_has_expected_shape() {
        let b = Bitmap::new(64, 32);
        let art = b.to_ascii(16);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.len() == 16));
    }
}
impl_json_struct!(Bitmap { width, height, pixels });
