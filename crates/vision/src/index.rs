//! Sub-quadratic Hamming-space neighbour index for 128-bit dhashes.
//!
//! The naive DBSCAN region query compares a point against all `n` others,
//! making clustering O(n²) distance evaluations — the regime the paper ran
//! offline over ~200k screenshots (§3.3). This module provides an **exact**
//! multi-index over Hamming space so a region query touches only candidate
//! points that *provably* could be within the radius.
//!
//! # The pigeonhole construction
//!
//! Fix an integer radius `r` (for DBSCAN over normalized Hamming distance,
//! `r = floor(eps · 128)`). Split the 128 hash bits into `B = r + 1`
//! disjoint contiguous bands. If two hashes `a` and `b` satisfy
//! `hamming(a, b) <= r`, their at most `r` differing bits fall into at most
//! `r` of the `B` bands — so **at least one band is bit-identical** between
//! `a` and `b` (pigeonhole). Bucketing every point by its exact value in
//! each band therefore makes the union of a query point's `B` buckets a
//! *complete* candidate superset of its `r`-ball. Each candidate is then
//! verified with the true 128-bit Hamming distance, so the neighbour set is
//! exact — [`dbscan_with`](crate::dbscan::dbscan_with) over this index
//! returns byte-identical labels to the naive path.
//!
//! Expected candidate volume per query on hashes without near-duplicate
//! structure is `B · n / 2^(128/B)` (each band has `128/B` bits), versus
//! `n` for the naive scan: at `eps = 0.1` (`B = 13`, ~9.8-bit bands) that
//! is roughly `n / 70`, and every candidate check is a single XOR+popcount
//! rather than a closure call. Near-duplicate *clusters* add their true
//! neighbours to the candidate list (up to once per band), which is
//! unavoidable — those are real results.
//!
//! Construction and region queries both shard cleanly:
//! [`HammingIndex::build_parallel`] farms whole bands out to `std`
//! scoped threads (each band's bucket map is built independently by one
//! worker scanning points in index order, so the resulting structure is
//! identical regardless of worker count), and
//! [`HammingIndex::regions_parallel`] precomputes every point's sorted
//! neighbour list across workers for the parallel clustering path.

use std::collections::HashMap;
use std::sync::mpsc;

use seacma_util::resolve_workers;

use crate::dbscan::RegionQuery;
use crate::dhash::{Dhash, HASH_BITS};

/// One band of the multi-index: a contiguous bit range and the bucket map
/// from exact band value to the (ascending) indices of points carrying it.
#[derive(Debug, Clone)]
struct Band {
    /// Right-shift that brings the band to bit 0.
    shift: u32,
    /// Mask of `width` low bits applied after the shift.
    mask: u128,
    /// The band's bits in word position (`mask << shift`): two hashes
    /// agree on this band iff `(a ^ b) & bits == 0`.
    bits: u128,
    /// Exact-band-value buckets; point indices ascend within each bucket.
    buckets: HashMap<u128, Vec<u32>>,
}

impl Band {
    #[inline]
    fn value_of(&self, h: Dhash) -> u128 {
        (h.0 >> self.shift) & self.mask
    }
}

/// Band layout for a given radius: `min(r + 1, 128)` contiguous bands
/// covering all 128 bits, widths differing by at most one bit.
fn band_layout(radius: u32) -> Vec<(u32, u128)> {
    let b = (radius + 1).min(HASH_BITS);
    let base = HASH_BITS / b;
    let rem = HASH_BITS % b;
    let mut layout = Vec::with_capacity(b as usize);
    let mut shift = 0u32;
    for i in 0..b {
        let width = base + u32::from(i < rem);
        let mask = if width >= 128 { u128::MAX } else { (1u128 << width) - 1 };
        layout.push((shift, mask));
        shift += width;
    }
    debug_assert_eq!(shift, HASH_BITS);
    layout
}

/// Converts a DBSCAN `eps` over *normalized* Hamming distance into the
/// equivalent integer bit radius: `hamming(a, b) / 128 <= eps` holds iff
/// `hamming(a, b) <= floor(eps · 128)`.
///
/// The conversion is exact in floating point: multiplying by 128 (a power
/// of two) never rounds, and integer bit distances are exactly
/// representable, so the indexed predicate matches the naive
/// `normalized_hamming(a, b) <= eps` bit for bit.
pub fn radius_for_eps(eps: f64) -> u32 {
    if eps <= 0.0 {
        return 0;
    }
    let r = (eps * f64::from(HASH_BITS)).floor();
    if r >= f64::from(HASH_BITS) {
        HASH_BITS
    } else {
        r as u32
    }
}

/// An exact Hamming-radius neighbour index over a fixed set of dhashes.
///
/// ```
/// use seacma_vision::dhash::Dhash;
/// use seacma_vision::index::HammingIndex;
///
/// let hashes = vec![Dhash(0), Dhash(0b111), Dhash(!0u128)];
/// let index = HammingIndex::build(&hashes, 0.1); // radius 12 bits
/// let mut out = Vec::new();
/// index.neighbours_into(0, &mut out);
/// assert_eq!(out, vec![0, 1]); // Dhash(!0) is 128 bits away
/// ```
#[derive(Debug, Clone)]
pub struct HammingIndex {
    hashes: Vec<Dhash>,
    radius: u32,
    bands: Vec<Band>,
}

impl HammingIndex {
    /// Builds the index over `hashes` for DBSCAN radius `eps` (normalized
    /// Hamming, as in [`DbscanParams::eps`](crate::dbscan::DbscanParams)).
    pub fn build(hashes: &[Dhash], eps: f64) -> Self {
        Self::build_parallel(hashes, eps, 1)
    }

    /// Builds the index with band construction sharded across `workers`
    /// scoped threads (`0` ⇒ available parallelism). The resulting index
    /// is identical to a sequential [`HammingIndex::build`]: each band is
    /// built wholly by one worker scanning points in index order, and
    /// bands are reassembled in layout order from the result channel.
    pub fn build_parallel(hashes: &[Dhash], eps: f64, workers: usize) -> Self {
        Self::build_radius_parallel(hashes, radius_for_eps(eps), workers)
    }

    /// Builds the index for an explicit integer bit radius rather than a
    /// normalized `eps` — the escalated-probe constructor the online
    /// detector uses to widen its near-miss ball a few bits past the
    /// clustering radius without going through a lossy float round trip.
    /// `radius` is clamped to 128; `build(h, eps)` is exactly
    /// `build_radius(h, radius_for_eps(eps))`.
    pub fn build_radius(hashes: &[Dhash], radius: u32) -> Self {
        Self::build_radius_parallel(hashes, radius, 1)
    }

    /// [`HammingIndex::build_radius`] with band construction sharded
    /// across `workers` scoped threads; same worker-count-invariance
    /// contract as [`HammingIndex::build_parallel`].
    pub fn build_radius_parallel(hashes: &[Dhash], radius: u32, workers: usize) -> Self {
        let radius = radius.min(HASH_BITS);
        let layout = band_layout(radius);
        let workers = resolve_workers(workers).min(layout.len().max(1));

        let build_band = |&(shift, mask): &(u32, u128)| -> Band {
            let mut buckets: HashMap<u128, Vec<u32>> = HashMap::new();
            for (i, &h) in hashes.iter().enumerate() {
                buckets.entry((h.0 >> shift) & mask).or_default().push(i as u32);
            }
            Band { shift, mask, bits: mask << shift, buckets }
        };

        let bands = if workers <= 1 || hashes.len() < 4096 {
            layout.iter().map(build_band).collect()
        } else {
            let (tx, rx) = mpsc::channel::<(usize, Band)>();
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let tx = tx.clone();
                    let layout = &layout;
                    let build_band = &build_band;
                    scope.spawn(move || {
                        for bi in (w..layout.len()).step_by(workers) {
                            tx.send((bi, build_band(&layout[bi]))).expect("receiver alive");
                        }
                    });
                }
            });
            drop(tx);
            let mut slots: Vec<Option<Band>> = layout.iter().map(|_| None).collect();
            for (bi, band) in rx {
                slots[bi] = Some(band);
            }
            slots.into_iter().map(|b| b.expect("every band built")).collect()
        };

        HammingIndex { hashes: hashes.to_vec(), radius, bands }
    }

    /// Appends one hash to the index and returns its point index.
    ///
    /// The result is identical to rebuilding the index over the extended
    /// hash list: new indices are strictly larger than every existing one,
    /// so pushing onto the end of each band bucket preserves the ascending
    /// order [`HammingIndex::neighbours_into`] relies on. This is the
    /// primitive the incremental tracker's streaming DBSCAN is built on —
    /// O(B) bucket pushes per point instead of an O(n·B) rebuild.
    pub fn insert(&mut self, h: Dhash) -> usize {
        let i = self.hashes.len();
        self.hashes.push(h);
        for band in &mut self.bands {
            band.buckets.entry(band.value_of(h)).or_default().push(i as u32);
        }
        i
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// The indexed hashes as one contiguous column, in point-index order.
    /// This is the struct-of-arrays dhash column the incremental tracker
    /// and the daemon's reputation snapshot scan directly, instead of
    /// keeping their own copy of every hash inside point structs.
    pub fn hashes(&self) -> &[Dhash] {
        &self.hashes
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The integer bit radius the index answers queries for.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Writes into `out` the ascending indices of every point within
    /// `radius` bits of point `p` (including `p` itself) — exactly the set
    /// the naive O(n) scan returns, in the same order.
    pub fn neighbours_into(&self, p: usize, out: &mut Vec<usize>) {
        self.neighbours_of_hash(self.hashes[p], out);
    }

    /// Writes into `out` the ascending indices of every indexed point
    /// within `radius` bits of an arbitrary **probe** hash `h` — the hash
    /// need not itself be indexed. This is the read-only query view the
    /// reputation daemon serves dhash lookups from: the pigeonhole
    /// argument is symmetric in the probe, so the candidate superset (the
    /// probe's `B` band buckets) is still complete and every candidate is
    /// verified with the true 128-bit distance.
    ///
    /// For an indexed `p`, `neighbours_of_hash(hash_of(p))` equals
    /// [`HammingIndex::neighbours_into`]`(p)` — same set, same order.
    pub fn neighbours_of_hash(&self, h: Dhash, out: &mut Vec<usize>) {
        out.clear();
        if self.radius >= HASH_BITS {
            out.extend(0..self.hashes.len());
            return;
        }
        // Verification is one XOR+popcount per candidate; a verified
        // neighbour is emitted only from its *first* matching band (a
        // neighbour matching band j also matches no earlier band iff the
        // diff word intersects bands 0..j), so each appears exactly once
        // and the final sort is over true neighbours, not candidates.
        for (j, band) in self.bands.iter().enumerate() {
            if let Some(bucket) = band.buckets.get(&band.value_of(h)) {
                'candidates: for &q in bucket {
                    let diff = h.0 ^ self.hashes[q as usize].0;
                    if diff.count_ones() > self.radius {
                        continue;
                    }
                    for earlier in &self.bands[..j] {
                        if diff & earlier.bits == 0 {
                            continue 'candidates;
                        }
                    }
                    out.push(q as usize);
                }
            }
        }
        out.sort_unstable();
    }

    /// The nearest indexed point within `radius` bits of probe `h`, as
    /// `(point index, distance)` — ties break to the lowest point index,
    /// so the answer is a pure function of the indexed set. `None` when no
    /// indexed point is within the radius.
    pub fn nearest_of_hash(&self, h: Dhash, scratch: &mut Vec<usize>) -> Option<(usize, u32)> {
        self.neighbours_of_hash(h, scratch);
        scratch
            .iter()
            .map(|&q| (q, (h.0 ^ self.hashes[q].0).count_ones()))
            .min_by_key(|&(q, d)| (d, q))
            .map(|(q, d)| (q, d))
    }

    /// Precomputes every point's neighbour list, sharding the queries
    /// across `workers` scoped threads (`0` ⇒ available parallelism).
    ///
    /// Each list is an independent pure function of the (read-only) index,
    /// so the result — and any DBSCAN run over it — is byte-identical to
    /// the sequential path for every worker count.
    pub fn regions_parallel(&self, workers: usize) -> PrecomputedRegions {
        let n = self.hashes.len();
        let workers = resolve_workers(workers).min(n.max(1));
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        let chunk = n.div_ceil(workers.max(1)).max(1);
        std::thread::scope(|scope| {
            for (ci, slice) in lists.chunks_mut(chunk).enumerate() {
                let start = ci * chunk;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (j, slot) in slice.iter_mut().enumerate() {
                        self.neighbours_into(start + j, &mut out);
                        slot.extend(out.iter().map(|&q| q as u32));
                    }
                });
            }
        });
        PrecomputedRegions { lists }
    }
}

impl RegionQuery for HammingIndex {
    fn len(&self) -> usize {
        self.hashes.len()
    }

    fn region(&mut self, p: usize, out: &mut Vec<usize>) {
        self.neighbours_into(p, out);
    }
}

/// Materialized neighbour lists (one sorted list per point), the output of
/// [`HammingIndex::regions_parallel`]. Implements
/// [`RegionQuery`] so the sequential DBSCAN sweep can consume lists that
/// were computed in parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecomputedRegions {
    lists: Vec<Vec<u32>>,
}

impl PrecomputedRegions {
    /// The neighbour list of point `p` (ascending, includes `p`).
    pub fn list(&self, p: usize) -> &[u32] {
        &self.lists[p]
    }
}

impl RegionQuery for PrecomputedRegions {
    fn len(&self) -> usize {
        self.lists.len()
    }

    fn region(&mut self, p: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.lists[p].iter().map(|&q| q as usize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dhash::hamming;

    fn brute(hashes: &[Dhash], p: usize, radius: u32) -> Vec<usize> {
        (0..hashes.len()).filter(|&q| hamming(hashes[p], hashes[q]) <= radius).collect()
    }

    #[test]
    fn radius_matches_naive_eps_threshold() {
        // eps = 0.1 over 128 bits: <= 12 differing bits is a neighbour,
        // 13 is not — the paper's setting.
        assert_eq!(radius_for_eps(0.1), 12);
        assert_eq!(radius_for_eps(0.05), 6);
        assert_eq!(radius_for_eps(0.2), 25);
        assert_eq!(radius_for_eps(0.0), 0);
        assert_eq!(radius_for_eps(1.0), 128);
        assert_eq!(radius_for_eps(7.5), 128);
    }

    #[test]
    fn band_layout_covers_all_bits_disjointly() {
        for radius in [0, 1, 5, 12, 25, 63, 127, 128, 200] {
            let layout = band_layout(radius);
            assert_eq!(layout.len() as u32, (radius + 1).min(HASH_BITS));
            let mut covered: u128 = 0;
            for &(shift, mask) in &layout {
                let band_bits = mask << shift;
                assert_eq!(covered & band_bits, 0, "bands overlap at radius {radius}");
                covered |= band_bits;
            }
            assert_eq!(covered, u128::MAX, "bands must cover all 128 bits");
        }
    }

    #[test]
    fn neighbours_match_brute_force() {
        use seacma_util::prop::Rng;
        let mut rng = Rng::new(0xB4BD);
        // Mixed corpus: random noise plus a planted near-duplicate cluster.
        let mut hashes: Vec<Dhash> = (0..60).map(|_| Dhash(rng.u128())).collect();
        let base = rng.u128();
        for i in 0..20 {
            hashes.push(Dhash(base ^ (1u128 << (i % 7))));
        }
        for eps in [0.05, 0.1, 0.2] {
            let index = HammingIndex::build(&hashes, eps);
            let mut out = Vec::new();
            for p in 0..hashes.len() {
                index.neighbours_into(p, &mut out);
                assert_eq!(out, brute(&hashes, p, index.radius()), "p={p} eps={eps}");
            }
        }
    }

    #[test]
    fn exact_radius_boundary_pairs() {
        // Differing in exactly r bits ⇒ neighbours; r + 1 ⇒ not, even when
        // the flipped bits straddle band boundaries.
        let r = radius_for_eps(0.1);
        let at_radius = Dhash((1u128 << r) - 1); // r low bits set
        let over_radius = Dhash((1u128 << (r + 1)) - 1);
        let hashes = vec![Dhash(0), at_radius, over_radius];
        let index = HammingIndex::build(&hashes, 0.1);
        let mut out = Vec::new();
        index.neighbours_into(0, &mut out);
        assert_eq!(out, vec![0, 1]);
        index.neighbours_into(2, &mut out);
        assert_eq!(out, vec![1, 2], "over-radius point still neighbours the mid point");
    }

    #[test]
    fn full_radius_returns_everything() {
        let hashes = vec![Dhash(0), Dhash(u128::MAX), Dhash(42)];
        let index = HammingIndex::build(&hashes, 1.0);
        let mut out = Vec::new();
        for p in 0..3 {
            index.neighbours_into(p, &mut out);
            assert_eq!(out, vec![0, 1, 2]);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty = HammingIndex::build(&[], 0.1);
        assert!(empty.is_empty());
        assert_eq!(empty.regions_parallel(4).len(), 0);

        let one = HammingIndex::build(&[Dhash(7)], 0.1);
        assert_eq!(one.len(), 1);
        let mut out = Vec::new();
        one.neighbours_into(0, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn probe_hash_queries_match_brute_force() {
        use seacma_util::prop::Rng;
        let mut rng = Rng::new(0xD0_5EAC);
        let base = rng.u128();
        let hashes: Vec<Dhash> = (0..70)
            .map(|i| {
                if i % 2 == 0 {
                    Dhash(base ^ (1u128 << (i % 11)))
                } else {
                    Dhash(rng.u128())
                }
            })
            .collect();
        let index = HammingIndex::build(&hashes, 0.1);
        let mut out = Vec::new();
        // Probes that are NOT in the index: near the planted cluster,
        // random, and exactly at the radius boundary of a known point.
        let mut probes = vec![Dhash(base ^ 3), Dhash(rng.u128())];
        probes.push(Dhash(hashes[0].0 ^ ((1u128 << index.radius()) - 1)));
        probes.push(Dhash(hashes[0].0 ^ ((1u128 << (index.radius() + 1)) - 1)));
        for h in probes {
            index.neighbours_of_hash(h, &mut out);
            let brute: Vec<usize> = (0..hashes.len())
                .filter(|&q| hamming(h, hashes[q]) <= index.radius())
                .collect();
            assert_eq!(out, brute, "probe {h:?}");
            let nearest = index.nearest_of_hash(h, &mut out);
            let brute_nearest = (0..hashes.len())
                .map(|q| (q, hamming(h, hashes[q])))
                .filter(|&(_, d)| d <= index.radius())
                .min_by_key(|&(q, d)| (d, q));
            assert_eq!(nearest, brute_nearest, "nearest for probe {h:?}");
        }
        // For indexed points, the probe path equals the by-index path.
        let mut by_index = Vec::new();
        for p in 0..hashes.len() {
            index.neighbours_into(p, &mut by_index);
            index.neighbours_of_hash(hashes[p], &mut out);
            assert_eq!(out, by_index, "p={p}");
        }
    }

    #[test]
    fn insert_matches_rebuild() {
        use seacma_util::prop::Rng;
        let mut rng = Rng::new(0x1A5E);
        let base = rng.u128();
        // Noise plus a planted near-duplicate cluster, arriving one by one.
        let hashes: Vec<Dhash> = (0..80)
            .map(|i| {
                if i % 3 == 0 {
                    Dhash(base ^ (1u128 << (i % 9)))
                } else {
                    Dhash(rng.u128())
                }
            })
            .collect();
        for eps in [0.0, 0.1, 1.0] {
            let mut grown = HammingIndex::build(&[], eps);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for n in 0..hashes.len() {
                assert_eq!(grown.insert(hashes[n]), n);
                let rebuilt = HammingIndex::build(&hashes[..=n], eps);
                for p in 0..=n {
                    grown.neighbours_into(p, &mut a);
                    rebuilt.neighbours_into(p, &mut b);
                    assert_eq!(a, b, "insert diverged from rebuild at n={n} p={p} eps={eps}");
                }
            }
        }
    }

    #[test]
    fn parallel_build_and_regions_match_sequential() {
        use seacma_util::prop::Rng;
        let mut rng = Rng::new(0x9A11);
        let base = rng.u128();
        // Large enough to trip the parallel build path (>= 4096 points);
        // the planted cluster stays modest because enumerating a dense
        // blob is inherently quadratic in its size.
        let hashes: Vec<Dhash> = (0..4500)
            .map(|i| {
                if i % 16 == 0 {
                    Dhash(base ^ (1u128 << (i % 64)))
                } else {
                    Dhash(rng.u128())
                }
            })
            .collect();
        let seq = HammingIndex::build(&hashes, 0.1);
        let par = HammingIndex::build_parallel(&hashes, 0.1, 4);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for p in 0..hashes.len() {
            seq.neighbours_into(p, &mut a);
            par.neighbours_into(p, &mut b);
            assert_eq!(a, b, "parallel build diverged at point {p}");
        }
        assert_eq!(seq.regions_parallel(1), par.regions_parallel(5));
    }
}
