//! Property-based tests for the vision substrate, on the in-tree
//! deterministic harness (`seacma_util::prop`).

use seacma_util::forall;
use seacma_util::prop::Rng;

use seacma_vision::bitmap::Bitmap;
use seacma_vision::cluster::{
    cluster_screenshots, cluster_screenshots_parallel, ClusterParams, ScreenshotPoint,
};
use seacma_vision::dbscan::{dbscan, dbscan_with, DbscanParams, Label};
use seacma_vision::dhash::{dhash128, hamming, normalized_hamming, Dhash};
use seacma_vision::index::HammingIndex;

/// A random bitmap with 4–39 pixel sides.
fn gen_bitmap(rng: &mut Rng) -> Bitmap {
    let w = rng.range(4, 40);
    let h = rng.range(4, 40);
    let px = (0..w * h).map(|_| rng.u8()).collect();
    Bitmap::from_pixels(w, h, px)
}

/// Hamming distance is a metric: symmetry + identity + triangle.
#[test]
fn hamming_is_a_metric() {
    forall!(|rng| {
        let (a, b, c) = (Dhash(rng.u128()), Dhash(rng.u128()), Dhash(rng.u128()));
        assert_eq!(hamming(a, b), hamming(b, a));
        assert_eq!(hamming(a, a), 0);
        assert!(hamming(a, c) <= hamming(a, b) + hamming(b, c));
    });
}

/// Normalized distance stays in [0, 1].
#[test]
fn normalized_hamming_in_unit_interval() {
    forall!(|rng| {
        let d = normalized_hamming(Dhash(rng.u128()), Dhash(rng.u128()));
        assert!((0.0..=1.0).contains(&d));
    });
}

/// Display/parse of a hash round-trips.
#[test]
fn dhash_display_parse_roundtrip() {
    forall!(|rng| {
        let h = Dhash(rng.u128());
        assert_eq!(Dhash::parse(&h.to_string()), Some(h));
    });
}

/// dhash is invariant under constant brightness shifts (gradient signs
/// are unchanged when every pixel moves by the same amount).
#[test]
fn dhash_brightness_shift_invariant() {
    forall!(|rng| {
        let bm = gen_bitmap(rng);
        let shift = rng.range(1, 60) as u8;
        let shifted = Bitmap::from_pixels(
            bm.width(),
            bm.height(),
            bm.pixels().iter().map(|&p| p / 2 + shift / 2).collect(),
        );
        let base = Bitmap::from_pixels(
            bm.width(),
            bm.height(),
            bm.pixels().iter().map(|&p| p / 2).collect(),
        );
        // Halving first avoids saturation; then the +shift/2 is a pure shift.
        let d = hamming(dhash128(&base), dhash128(&shifted));
        assert_eq!(d, 0);
    });
}

/// Small perturbations keep the hash within the DBSCAN eps ball.
#[test]
fn dhash_noise_stability() {
    forall!(|rng| {
        let seed = rng.u64();
        // A structured image (not constant): diagonal gradient.
        let mut bm = Bitmap::new(64, 40);
        for y in 0..40 {
            for x in 0..64 {
                bm.set(x, y, ((x * 3 + y * 2) % 251) as u8);
            }
        }
        let mut noisy = bm.clone();
        noisy.perturb(seed, 4);
        let d = hamming(dhash128(&bm), dhash128(&noisy));
        assert!(d <= 12, "noise moved the hash {} bits", d);
    });
}

/// Resize to the same dimensions is the identity.
#[test]
fn resize_identity() {
    forall!(|rng| {
        let bm = gen_bitmap(rng);
        let same = bm.resize(bm.width(), bm.height());
        assert_eq!(same, bm);
    });
}

/// DBSCAN labels exactly the input points and ids are contiguous.
#[test]
fn dbscan_labels_are_well_formed() {
    forall!(|rng| {
        let points = rng.vec_of(0, 59, |r| r.f64_range(0.0, 100.0));
        let labels = dbscan(
            points.len(),
            DbscanParams { eps: 2.0, min_pts: 3 },
            |a, b| (points[a] - points[b]).abs(),
        );
        assert_eq!(labels.len(), points.len());
        let mut ids: Vec<usize> = labels.iter().filter_map(|l| l.cluster_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(i, *id, "cluster ids must be contiguous from 0");
        }
        // Every cluster must contain at least one core point => at least
        // min_pts members (core + density-reachable neighbours).
        for id in ids {
            let size = labels.iter().filter(|l| l.cluster_id() == Some(id)).count();
            assert!(size >= 3, "cluster {} has only {} members", id, size);
        }
    });
}

/// Clustering partitions: every input index appears in exactly one
/// cluster or is noise.
#[test]
fn clustering_is_a_partition() {
    forall!(|rng| {
        let hashes = rng.vec_of(0, 49, Rng::u128);
        let pts: Vec<ScreenshotPoint> = hashes
            .iter()
            .enumerate()
            .map(|(i, &h)| ScreenshotPoint::new(Dhash(h), format!("dom{}.com", i % 7)))
            .collect();
        let out = cluster_screenshots(&pts, ClusterParams::default());
        let mut seen = vec![0usize; pts.len()];
        for c in out.campaigns.iter().chain(&out.filtered) {
            for &m in &c.members {
                seen[m] += 1;
            }
        }
        let clustered: usize = seen.iter().sum();
        assert_eq!(clustered + out.noise, pts.len());
        assert!(seen.iter().all(|&s| s <= 1), "a point appeared in two clusters");
    });
}

/// θc filter: every reported campaign spans at least θc domains.
#[test]
fn campaigns_respect_theta_c() {
    forall!(|rng| {
        let n_domains = rng.range(1, 12);
        let pts: Vec<ScreenshotPoint> = (0..30)
            .map(|i| {
                ScreenshotPoint::new(
                    Dhash(0xFACE ^ (1 << (i % 2))),
                    format!("d{}.net", i % n_domains),
                )
            })
            .collect();
        let params = ClusterParams::default();
        let out = cluster_screenshots(&pts, params);
        for c in &out.campaigns {
            assert!(c.domain_count() >= params.theta_c);
        }
        if n_domains < params.theta_c {
            assert!(out.campaigns.is_empty());
        } else {
            assert_eq!(out.campaigns.len(), 1);
        }
    });
}

/// A random dhash corpus mixing planted near-duplicate clusters with
/// uniform noise — the workload shape of a screenshot crawl.
fn gen_dhash_corpus(rng: &mut Rng) -> Vec<Dhash> {
    let n_clusters = rng.range(0, 4);
    let mut hashes: Vec<Dhash> = Vec::new();
    for _ in 0..n_clusters {
        let base = rng.u128();
        let members = rng.range(2, 12);
        for _ in 0..members {
            let mut h = base;
            for _ in 0..rng.below(4) {
                h ^= 1u128 << rng.below(128);
            }
            hashes.push(Dhash(h));
        }
    }
    let noise = rng.range(0, 30);
    hashes.extend((0..noise).map(|_| Dhash(rng.u128())));
    hashes
}

/// The tentpole exactness property: indexed DBSCAN labels equal naive
/// DBSCAN labels on random dhash corpora, across the eps range the
/// ablation sweeps (paper setting 0.1 ± a binding).
#[test]
fn indexed_dbscan_equals_naive() {
    forall!(|rng| {
        let hashes = gen_dhash_corpus(rng);
        for eps in [0.05, 0.1, 0.2] {
            let naive = dbscan(hashes.len(), DbscanParams { eps, min_pts: 3 }, |a, b| {
                normalized_hamming(hashes[a], hashes[b])
            });
            let mut index = HammingIndex::build(&hashes, eps);
            let indexed = dbscan_with(&mut index, 3);
            assert_eq!(indexed, naive, "eps={eps} n={}", hashes.len());
        }
    });
}

/// Adversarial band-boundary cases: points at Hamming distance exactly r
/// and exactly r + 1 from a base, with the differing bits packed so they
/// straddle band boundaries or saturate single bands — the configurations
/// where an off-by-one in the pigeonhole banding would show up.
#[test]
fn indexed_dbscan_exact_at_band_boundaries() {
    forall!(128, |rng| {
        let eps = *rng.pick(&[0.05f64, 0.1, 0.2]);
        let r = (eps * 128.0).floor() as u32;
        let base = rng.u128();
        let mut hashes = vec![Dhash(base)];
        // Distance exactly r: contiguous run starting at a random offset
        // (wraps across band boundaries for most offsets).
        let start = rng.below(128) as u32;
        let mut at_r = base;
        for k in 0..r {
            at_r ^= 1u128 << ((start + k) % 128);
        }
        hashes.push(Dhash(at_r));
        // Distance exactly r + 1: same run extended one bit.
        let mut over_r = at_r;
        over_r ^= 1u128 << ((start + r) % 128);
        hashes.push(Dhash(over_r));
        // Padding duplicates of the base so it is a core point.
        hashes.push(Dhash(base ^ 1));
        hashes.push(Dhash(base ^ 2));

        let index = HammingIndex::build(&hashes, eps);
        let mut out = Vec::new();
        index.neighbours_into(0, &mut out);
        assert!(out.contains(&1), "distance-r point must be found (eps={eps}, start={start})");
        assert!(
            hamming(Dhash(base), Dhash(over_r)) == r + 1 && !out.contains(&2),
            "distance-(r+1) point must be excluded (eps={eps}, start={start})"
        );

        let naive = dbscan(hashes.len(), DbscanParams { eps, min_pts: 3 }, |a, b| {
            normalized_hamming(hashes[a], hashes[b])
        });
        let mut index = index;
        let indexed = dbscan_with(&mut index, 3);
        assert_eq!(indexed, naive);
    });
}

/// The parallel clustering stage is byte-identical to the sequential run
/// for every worker count, on arbitrary corpora.
#[test]
fn parallel_clustering_matches_sequential() {
    forall!(64, |rng| {
        let hashes = gen_dhash_corpus(rng);
        let pts: Vec<ScreenshotPoint> = hashes
            .iter()
            .enumerate()
            .map(|(i, &h)| ScreenshotPoint::new(h, format!("d{}.com", i % 9)))
            .collect();
        let seq = cluster_screenshots(&pts, ClusterParams::default());
        let workers = rng.range(2, 9);
        let par = cluster_screenshots_parallel(&pts, ClusterParams::default(), workers);
        assert_eq!(par.campaigns, seq.campaigns, "workers={workers}");
        assert_eq!(par.filtered, seq.filtered, "workers={workers}");
        assert_eq!(par.noise, seq.noise, "workers={workers}");
    });
}

#[test]
fn dbscan_noise_points_have_no_id() {
    assert_eq!(Label::Noise.cluster_id(), None);
    assert_eq!(Label::Cluster(4).cluster_id(), Some(4));
}
