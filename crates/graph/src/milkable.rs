//! Milkable-URL candidate extraction (paper §3.5).
//!
//! SE attack pages live on throw-away domains lasting hours to days, but
//! the ad-loading chain usually contains an *upstream* URL on a much
//! longer-lived domain (a traffic-distribution server). Re-visiting that
//! URL keeps yielding fresh, not-yet-blacklisted attack domains. Starting
//! from the attack page URL, we walk the backtracking graph until the
//! first node *not hosted on the attack page's domain* — that URL is the
//! milking candidate. (Whether it actually milks is validated later by
//! screenshot comparison; see `seacma-milker`.)

use seacma_simweb::Url;

use crate::backtrack::BacktrackGraph;

/// Extracts the milking candidate for one attack URL: the nearest upstream
/// node hosted off the attack page's e2LD. Returns `None` when the whole
/// recorded chain is on-domain (no upstream indirection observed).
///
/// The walk borrows the graph's symbol table and compares e2LDs as host
/// slices, so the only allocations are the path vector and the returned
/// candidate itself.
pub fn candidate(graph: &BacktrackGraph, attack: &Url) -> Option<Url> {
    let apex = attack.e2ld_ref();
    graph
        .backtrack_urls(attack)
        .into_iter()
        .skip(1) // the attack URL itself
        .find_map(|(url, _)| {
            let url = url?;
            (url.e2ld_ref() != apex).then(|| url.clone())
        })
}

/// Extracts candidates for a batch of attack URLs, deduplicated and in
/// deterministic order.
pub fn candidates<'a, I>(graph: &BacktrackGraph, attacks: I) -> Vec<Url>
where
    I: IntoIterator<Item = &'a Url>,
{
    let mut out: Vec<Url> = attacks
        .into_iter()
        .filter_map(|a| candidate(graph, a))
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_browser::{BrowserEvent, EventLog};
    use seacma_simweb::RedirectKind;

    fn u(h: &str, p: &str) -> Url {
        Url::http(h, p)
    }

    fn chain_log(hops: &[(&str, &str, RedirectKind)]) -> EventLog {
        let mut log = EventLog::new();
        for (from, to, kind) in hops {
            log.push(BrowserEvent::Redirected {
                from: u(from, "/"),
                to: u(to, "/x"),
                kind: *kind,
            });
        }
        log
    }

    #[test]
    fn finds_first_offdomain_upstream() {
        // click.adnet.com → tds.info → attack.club
        let log = chain_log(&[
            ("click.adnet.com", "tds.info", RedirectKind::Http302),
            ("tds.info", "attack.club", RedirectKind::JsSetTimeout),
        ]);
        let g = BacktrackGraph::from_log(&log);
        let c = candidate(&g, &u("attack.club", "/x")).unwrap();
        assert_eq!(c.host, "tds.info");
    }

    #[test]
    fn skips_on_domain_hops() {
        // Attack page does an internal same-site hop first:
        // tds.info/ → www.attack.club/x → attack.club/final
        let mut log = chain_log(&[("tds.info", "www.attack.club", RedirectKind::JsLocation)]);
        log.push(BrowserEvent::Redirected {
            from: u("www.attack.club", "/x"),
            to: u("attack.club", "/final"),
            kind: RedirectKind::Http301,
        });
        let g = BacktrackGraph::from_log(&log);
        let c = candidate(&g, &u("attack.club", "/final")).unwrap();
        assert_eq!(c.host, "tds.info", "same-e2LD hop must be skipped");
    }

    #[test]
    fn none_when_no_upstream() {
        let g = BacktrackGraph::from_log(&EventLog::new());
        assert!(candidate(&g, &u("attack.club", "/")).is_none());
    }

    #[test]
    fn batch_deduplicates() {
        let mut log = chain_log(&[("tds.info", "a1.club", RedirectKind::JsLocation)]);
        log.push(BrowserEvent::Redirected {
            from: u("tds.info", "/"),
            to: u("a2.club", "/x"),
            kind: RedirectKind::JsLocation,
        });
        let g = BacktrackGraph::from_log(&log);
        let attacks = [u("a1.club", "/x"), u("a2.club", "/x")];
        let cs = candidates(&g, attacks.iter());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].host, "tds.info");
    }
}
