//! Cheap chain statistics for the online detector.
//!
//! The backtracking graph (§3.4) reconstructs the full ad-loading
//! process; the online detector needs only one scalar from it — how many
//! *distinct third-party sites* took part in delivering the landing page.
//! SE attack loads are syndicated through redirector/ad-network origins,
//! so a high count is a structural tell even when the creative is new.

use std::collections::BTreeSet;

use seacma_simweb::Url;

/// Number of distinct e2LDs among `urls` other than `landing_e2ld` — the
/// third-party-site count of one ad-loading chain. Subdomains fold into
/// their e2LD, so `ads.trk.net` and `cdn.trk.net` count once.
///
/// ```
/// use seacma_graph::chain_third_party_e2lds;
/// use seacma_simweb::Url;
///
/// let urls = vec![
///     Url::http("pub.com", "/"),
///     Url::http("ads.trk.net", "/a"),
///     Url::http("cdn.trk.net", "/b"),
///     Url::http("prize.club", "/lp"),
/// ];
/// assert_eq!(chain_third_party_e2lds(&urls, "prize.club"), 2);
/// ```
pub fn chain_third_party_e2lds(urls: &[Url], landing_e2ld: &str) -> u32 {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for u in urls {
        let e = u.e2ld();
        if e != landing_e2ld {
            seen.insert(e);
        }
    }
    seen.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_same_site_chains_count_zero() {
        assert_eq!(chain_third_party_e2lds(&[], "x.club"), 0);
        let urls = vec![Url::http("x.club", "/a"), Url::http("www.x.club", "/b")];
        assert_eq!(chain_third_party_e2lds(&urls, "x.club"), 0);
    }

    #[test]
    fn duplicates_fold() {
        let urls = vec![
            Url::http("a.com", "/1"),
            Url::http("a.com", "/2"),
            Url::http("b.net", "/"),
        ];
        assert_eq!(chain_third_party_e2lds(&urls, "x.club"), 2);
    }
}
