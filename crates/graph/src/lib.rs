//! # seacma-graph
//!
//! Ad-loading process reconstruction (paper §3.4–§3.6).
//!
//! From the instrumented browser's event log this crate rebuilds, for every
//! SE attack page, the *backtracking graph*: all URLs involved in rendering
//! the ad and delivering the landing page, connected by causal edges
//! (script inclusion, clicks, `window.open`, HTTP and JS redirections).
//! Referrer-chain analysis is insufficient because obfuscated ad code
//! suppresses referrers; the causal log is not fooled.
//!
//! Two analyses run on the graphs:
//!
//! * [`milkable::candidates`] — walk backwards from the attack URL until
//!   the first node hosted off the attack page's e2LD: the campaign's
//!   longer-lived upstream ("milkable") URL (§3.5).
//! * [`attribution::Attributor`] — match every URL on the backward path
//!   (and the scripts hanging off it) against ad-network invariant
//!   patterns to attribute the ad to the network that served it (§3.6).

#![deny(missing_docs)]

pub mod attribution;
pub mod backtrack;
pub mod chain;
pub mod milkable;

pub use attribution::{Attribution, Attributor, NetworkPattern};
pub use backtrack::{BacktrackGraph, EdgeKind, PathStep};
pub use chain::chain_third_party_e2lds;
