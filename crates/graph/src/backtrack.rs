//! Backtracking graphs over browser event logs.

use std::collections::HashMap;

use seacma_util::sym::Interner;
use seacma_util::{impl_json_enum, impl_json_struct};

use seacma_browser::{EventLog, EventRef};
use seacma_simweb::{RedirectKind, Url};

/// Causal relationship between two URLs in the ad-loading process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Child was reached by a redirect of the given kind from the parent.
    Redirect(RedirectKind),
    /// Child opened in a new tab via `window.open` on the parent.
    WindowOpen,
    /// Child was navigated to by a click on the parent.
    UserClick,
    /// Child is a script included by the parent document.
    ScriptInclude,
}

/// One step on a backward path: the URL and the edge that led *to* it from
/// its child (i.e. how the next-downstream URL was caused by this one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// URL of this node.
    pub url: Url,
    /// Edge connecting this node to the node one step downstream; `None`
    /// for the starting node.
    pub via: Option<EdgeKind>,
}

/// A causal URL graph reconstructed from one browsing session's log.
///
/// ```
/// use seacma_browser::{BrowserEvent, EventLog};
/// use seacma_graph::{milkable, BacktrackGraph};
/// use seacma_simweb::{RedirectKind, Url};
///
/// let mut log = EventLog::new();
/// let click = Url::http("srv.adnet.com", "/banners/asd.php?z=1");
/// let tds = Url::http("findglo210.info", "/go");
/// let attack = Url::http("live6nmld10.club", "/idx.php");
/// log.push(BrowserEvent::Redirected { from: click, to: tds.clone(), kind: RedirectKind::Http302 });
/// log.push(BrowserEvent::Redirected { from: tds, to: attack.clone(), kind: RedirectKind::JsSetTimeout });
///
/// let graph = BacktrackGraph::from_log(&log);
/// // The milkable candidate is the first upstream node off the attack e2LD.
/// assert_eq!(milkable::candidate(&graph, &attack).unwrap().host, "findglo210.info");
/// ```
#[derive(Debug, Clone, Default)]
pub struct BacktrackGraph {
    /// Symbol table: every distinct URL seen in the log, in first-seen
    /// order. Edge maps below speak u32 symbols into this table, so graph
    /// construction and traversal clone each URL string once per log
    /// instead of once per event/step. Same engine as the world-level
    /// domain arena, instantiated per log over [`Url`] keys.
    urls: Interner<Url>,
    /// `child → (parent, kind)`; last writer wins, which matches "the most
    /// recent cause" for URLs visited repeatedly in one session.
    parent: HashMap<u32, (u32, EdgeKind)>,
    /// `document → scripts it included`.
    scripts: HashMap<u32, Vec<u32>>,
}

impl BacktrackGraph {
    /// Builds the graph from a session log. Walks the log's borrowed
    /// event views, so the only URL clones are the first-sight interns
    /// into this graph's own symbol table.
    pub fn from_log(log: &EventLog) -> Self {
        let mut g = BacktrackGraph::default();
        g.extend_from_log(log, 0);
        g
    }

    /// Incrementally ingests the log events at indices `from..log.len()`,
    /// returning the new cursor (`log.len()`).
    ///
    /// Graph construction is order-incremental — parent edges are
    /// last-writer-wins inserts and script lists append — so feeding a
    /// growing log's events through any sequence of calls (each picking up
    /// where the last left off) yields exactly the graph `from_log` would
    /// build from the same prefix. The crawl loop leans on this: one graph
    /// per visit, extended after each ad landing, instead of a full
    /// rebuild — and re-intern — of the whole session log per landing.
    pub fn extend_from_log(&mut self, log: &EventLog, from: usize) -> usize {
        for e in log.events().skip(from) {
            match e {
                EventRef::Redirected { from, to, kind } => {
                    let (f, t) = (self.intern(from), self.intern(to));
                    self.parent.insert(t, (f, EdgeKind::Redirect(kind)));
                }
                EventRef::TabOpened { opener, url } => {
                    let (o, u) = (self.intern(opener), self.intern(url));
                    self.parent.insert(u, (o, EdgeKind::WindowOpen));
                }
                EventRef::NavigationStart {
                    url,
                    cause: seacma_browser::NavCause::UserClick,
                    initiator: Some(init),
                } => {
                    let (i, u) = (self.intern(init), self.intern(url));
                    self.parent.insert(u, (i, EdgeKind::UserClick));
                }
                EventRef::ScriptLoaded { page, src } => {
                    let (p, s) = (self.intern(page), self.intern(src));
                    self.scripts.entry(p).or_default().push(s);
                }
                _ => {}
            }
        }
        log.len()
    }

    /// Empties the graph while keeping its buffers, so one graph (and its
    /// symbol table, edge map and script lists) can be recycled across
    /// many per-session builds. A cleared graph is observationally
    /// identical to `BacktrackGraph::default()`.
    pub fn clear(&mut self) {
        self.urls.clear();
        self.parent.clear();
        self.scripts.clear();
    }

    /// The symbol for `url`, allocating one on first sight.
    fn intern(&mut self, url: &Url) -> u32 {
        self.urls.intern(url)
    }

    /// The URL a symbol stands for.
    fn url(&self, id: u32) -> &Url {
        self.urls.resolve(id)
    }

    /// Number of nodes with a known parent.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the graph has no edges at all.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty() && self.scripts.is_empty()
    }

    /// Direct parent of a URL, if known.
    pub fn parent_of(&self, url: &Url) -> Option<(&Url, EdgeKind)> {
        let id = self.urls.get(url)?;
        self.parent.get(&id).map(|&(p, k)| (self.url(p), k))
    }

    /// Scripts included by a document, in inclusion order.
    pub fn scripts_of<'g>(&'g self, url: &Url) -> impl Iterator<Item = &'g Url> + 'g {
        self.urls
            .get(url)
            .and_then(|id| self.scripts.get(&id))
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|&s| self.url(s))
    }

    /// The backward path from `start` as symbols, starting node first.
    /// Cycles are broken by visited-set; the path is capped at 64 steps.
    /// `start` itself is reported as `None` when it never appears in the
    /// log (the caller clones it instead of interning into `&self`).
    fn backtrack_ids(&self, start: &Url) -> Vec<(Option<u32>, Option<EdgeKind>)> {
        let Some(start_id) = self.urls.get(start) else {
            return vec![(None, None)];
        };
        let mut path = vec![(Some(start_id), None)];
        let mut cur = start_id;
        let mut seen = std::collections::HashSet::new();
        seen.insert(cur);
        while let Some(&(p, k)) = self.parent.get(&cur) {
            if !seen.insert(p) || path.len() >= 64 {
                break;
            }
            path.push((Some(p), Some(k)));
            cur = p;
        }
        path
    }

    /// [`backtrack`](Self::backtrack) without cloning any URL: each step
    /// borrows the graph's symbol table (`None` for a start URL the log
    /// never mentioned — the caller already holds that URL). Scans that
    /// only inspect the path (the milkable-candidate walk) use this to
    /// stay allocation-free until they pick a step to keep.
    pub fn backtrack_urls(&self, start: &Url) -> Vec<(Option<&Url>, Option<EdgeKind>)> {
        self.backtrack_ids(start)
            .into_iter()
            .map(|(id, via)| (id.map(|i| self.url(i)), via))
            .collect()
    }

    /// The backward path from `start` to the root (the publisher page the
    /// crawler originally visited), starting node first. Cycles are broken
    /// by visited-set; the path is capped at 64 steps.
    pub fn backtrack(&self, start: &Url) -> Vec<PathStep> {
        self.backtrack_ids(start)
            .into_iter()
            .map(|(id, via)| PathStep {
                url: id.map(|i| self.url(i).clone()).unwrap_or_else(|| start.clone()),
                via,
            })
            .collect()
    }

    /// Every URL involved in delivering `start`: the backward path plus all
    /// scripts included by documents on it, deduplicated in first-seen
    /// order (a script shared by several path documents — one ad-network
    /// tag loaded on every hop — counts once). This is the URL set
    /// attribution scans (§3.6: "for each URL in the ad loading and landing
    /// page redirection process").
    pub fn involved_urls(&self, start: &Url) -> Vec<Url> {
        let mut out = Vec::new();
        let mut emitted = std::collections::HashSet::new();
        let mut push = |out: &mut Vec<Url>, id: u32| {
            if emitted.insert(id) {
                out.push(self.url(id).clone());
            }
        };
        for (id, _) in self.backtrack_ids(start) {
            let Some(id) = id else {
                // `start` never appeared in the log: the path is just it.
                out.push(start.clone());
                continue;
            };
            if let Some(scripts) = self.scripts.get(&id) {
                for &s in scripts {
                    push(&mut out, s);
                }
            }
            push(&mut out, id);
        }
        out
    }

    /// Renders the backward path from `start` in Graphviz DOT form
    /// (figure-3-style output).
    pub fn to_dot(&self, start: &Url) -> String {
        let mut s = String::from("digraph backtrack {\n  rankdir=TB;\n");
        let path = self.backtrack(start);
        for w in path.windows(2) {
            let child = &w[0];
            let parent = &w[1];
            let label = match parent.via {
                Some(EdgeKind::Redirect(k)) => format!("{k:?}"),
                Some(EdgeKind::WindowOpen) => "window.open".to_string(),
                Some(EdgeKind::UserClick) => "click".to_string(),
                Some(EdgeKind::ScriptInclude) => "script".to_string(),
                None => String::new(),
            };
            s.push_str(&format!("  \"{}\" -> \"{}\" [label=\"{}\"];\n", parent.url, child.url, label));
        }
        for step in &path {
            for script in self.scripts_of(&step.url) {
                s.push_str(&format!(
                    "  \"{}\" -> \"{}\" [label=\"script\", style=dashed];\n",
                    step.url, script
                ));
            }
        }
        s.push_str("}\n");
        s
    }

    /// Renders the backward path as indented ASCII (terminal-friendly
    /// figure 3).
    pub fn to_ascii(&self, start: &Url) -> String {
        let path = self.backtrack(start);
        let mut s = String::new();
        for (depth, step) in path.iter().rev().enumerate() {
            let indent = "  ".repeat(depth);
            let via = match step.via {
                Some(EdgeKind::Redirect(k)) => format!(" ←[{k:?}]"),
                Some(EdgeKind::WindowOpen) => " ←[window.open]".to_string(),
                Some(EdgeKind::UserClick) => " ←[click]".to_string(),
                Some(EdgeKind::ScriptInclude) => " ←[script]".to_string(),
                None => String::new(),
            };
            s.push_str(&format!("{indent}{}{via}\n", step.url));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_browser::{BrowserEvent, EventLog, NavCause};

    fn u(h: &str, p: &str) -> Url {
        Url::http(h, p)
    }

    /// A synthetic log mirroring Figure 3: publisher → (tab) click URL →
    /// (302) TDS → (JS) attack.
    fn figure3_log() -> EventLog {
        let mut log = EventLog::new();
        let publisher = u("verbeinlaliga.com", "/");
        let click = u("nsvf17p9.com", "/banners/asd.php?z=1");
        let tds = u("findglo210.info", "/go");
        let attack = u("live6nmld10.club", "/landing/idx.php");
        log.push(BrowserEvent::PageLoaded { url: publisher.clone(), title: "pub".into() });
        log.push(BrowserEvent::ScriptLoaded {
            page: publisher.clone(),
            src: u("nsvf17p9.com", "/banners/asd.php.js"),
        });
        log.push(BrowserEvent::TabOpened { opener: publisher.clone(), url: click.clone() });
        log.push(BrowserEvent::Redirected {
            from: click.clone(),
            to: tds.clone(),
            kind: RedirectKind::Http302,
        });
        log.push(BrowserEvent::Redirected {
            from: tds.clone(),
            to: attack.clone(),
            kind: RedirectKind::JsSetTimeout,
        });
        log.push(BrowserEvent::PageLoaded { url: attack, title: "scam".into() });
        log
    }

    #[test]
    fn backtrack_recovers_full_chain() {
        let g = BacktrackGraph::from_log(&figure3_log());
        let attack = u("live6nmld10.club", "/landing/idx.php");
        let path = g.backtrack(&attack);
        let hosts: Vec<&str> = path.iter().map(|s| s.url.host.as_str()).collect();
        assert_eq!(
            hosts,
            vec!["live6nmld10.club", "findglo210.info", "nsvf17p9.com", "verbeinlaliga.com"]
        );
        assert_eq!(path[1].via, Some(EdgeKind::Redirect(RedirectKind::JsSetTimeout)));
        assert_eq!(path[3].via, Some(EdgeKind::WindowOpen));
    }

    #[test]
    fn involved_urls_include_scripts() {
        let g = BacktrackGraph::from_log(&figure3_log());
        let attack = u("live6nmld10.club", "/landing/idx.php");
        let urls = g.involved_urls(&attack);
        assert!(urls.iter().any(|x| x.path.ends_with(".js")), "loader script missing");
        assert_eq!(urls.len(), 5);
    }

    #[test]
    fn user_click_edges_recorded() {
        let mut log = EventLog::new();
        let a = u("a.com", "/");
        let b = u("b.com", "/");
        log.push(BrowserEvent::NavigationStart {
            url: b.clone(),
            cause: NavCause::UserClick,
            initiator: Some(a.clone()),
        });
        let g = BacktrackGraph::from_log(&log);
        assert_eq!(g.parent_of(&b), Some((&a, EdgeKind::UserClick)));
    }

    #[test]
    fn cycles_terminate() {
        let mut log = EventLog::new();
        let a = u("a.com", "/");
        let b = u("b.com", "/");
        log.push(BrowserEvent::Redirected {
            from: a.clone(),
            to: b.clone(),
            kind: RedirectKind::Http302,
        });
        log.push(BrowserEvent::Redirected {
            from: b.clone(),
            to: a.clone(),
            kind: RedirectKind::Http302,
        });
        let g = BacktrackGraph::from_log(&log);
        let path = g.backtrack(&a);
        assert_eq!(path.len(), 2, "cycle must be cut");
    }

    #[test]
    fn unknown_start_is_singleton_path() {
        let g = BacktrackGraph::from_log(&EventLog::new());
        let path = g.backtrack(&u("nowhere.com", "/"));
        assert_eq!(path.len(), 1);
        assert!(g.is_empty());
    }

    #[test]
    fn dot_and_ascii_render() {
        let g = BacktrackGraph::from_log(&figure3_log());
        let attack = u("live6nmld10.club", "/landing/idx.php");
        let dot = g.to_dot(&attack);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("findglo210.info"));
        assert!(dot.contains("style=dashed"), "script edges must render dashed");
        let ascii = g.to_ascii(&attack);
        assert!(ascii.contains("verbeinlaliga.com"));
        assert!(ascii.lines().count() >= 4);
    }

    #[test]
    fn involved_urls_dedup_scripts_across_path_steps() {
        // One ad-network tag loaded by *every* document on the path (the
        // real-web shape that used to duplicate entries), plus a doubled
        // include on a single document.
        let mut log = figure3_log();
        let tag = u("nsvf17p9.com", "/tag.js");
        let tds = u("findglo210.info", "/go");
        let attack = u("live6nmld10.club", "/landing/idx.php");
        for page in [u("verbeinlaliga.com", "/"), tds.clone(), attack.clone()] {
            log.push(BrowserEvent::ScriptLoaded { page, src: tag.clone() });
        }
        log.push(BrowserEvent::ScriptLoaded { page: tds, src: tag.clone() });
        let g = BacktrackGraph::from_log(&log);
        let urls = g.involved_urls(&attack);
        assert_eq!(urls.iter().filter(|x| **x == tag).count(), 1, "tag must appear once");
        // First-seen order: the walk starts at the attack page, whose
        // script list is scanned before the attack URL itself.
        assert_eq!(urls[0], tag);
        assert_eq!(urls[1], attack);
        let mut sorted = urls.clone();
        sorted.sort_by_key(|x| x.to_string());
        sorted.dedup();
        assert_eq!(sorted.len(), urls.len(), "no other duplicates either");
    }

    #[test]
    fn cleared_graph_rebuilds_identically() {
        // Recycling a dirty graph must be observationally a fresh build:
        // same symbol assignment, same edges, same query answers.
        let log = figure3_log();
        let attack = u("live6nmld10.club", "/landing/idx.php");
        let full = BacktrackGraph::from_log(&log);
        let mut recycled = BacktrackGraph::from_log(&log); // dirty it
        recycled.clear();
        assert!(recycled.is_empty());
        let cursor = recycled.extend_from_log(&log, 0);
        assert_eq!(cursor, log.len());
        assert_eq!(recycled.len(), full.len());
        assert_eq!(recycled.backtrack(&attack), full.backtrack(&attack));
        assert_eq!(recycled.involved_urls(&attack), full.involved_urls(&attack));
    }

    #[test]
    fn extend_in_two_stages_equals_one_shot() {
        // Split the log at every possible point; ingesting the two halves
        // in order must equal one-shot construction (order-incrementality
        // is what the per-landing crawl extension leans on).
        let log = figure3_log();
        let attack = u("live6nmld10.club", "/landing/idx.php");
        let full = BacktrackGraph::from_log(&log);
        for split in 0..=log.len() {
            let mut g = BacktrackGraph::default();
            // First stage: a log holding only the first `split` events.
            let mut head = EventLog::new();
            for e in log.events().take(split) {
                head.push(e.to_owned());
            }
            let c = g.extend_from_log(&head, 0);
            assert_eq!(c, split);
            let c = g.extend_from_log(&log, c);
            assert_eq!(c, log.len());
            assert_eq!(g.len(), full.len());
            assert_eq!(g.backtrack(&attack), full.backtrack(&attack));
            assert_eq!(g.involved_urls(&attack), full.involved_urls(&attack));
        }
    }

    #[test]
    fn json_shape_survives_interning_and_roundtrips() {
        use seacma_util::json;
        let g = BacktrackGraph::from_log(&figure3_log());
        let text = json::to_string(&g);
        // External shape: URL-keyed maps, exactly as before interning.
        let v = json::parse(&text).expect("graph serializes to valid json");
        assert!(v.get("parent").is_some() && v.get("scripts").is_some());
        let back: BacktrackGraph = json::from_str(&text).expect("graph parses back");
        let attack = u("live6nmld10.club", "/landing/idx.php");
        assert_eq!(back.len(), g.len());
        assert_eq!(back.backtrack(&attack), g.backtrack(&attack));
        assert_eq!(back.involved_urls(&attack), g.involved_urls(&attack));
        for step in g.backtrack(&attack) {
            assert_eq!(
                back.scripts_of(&step.url).collect::<Vec<_>>(),
                g.scripts_of(&step.url).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn repeated_visits_keep_most_recent_parent() {
        let mut log = EventLog::new();
        let a = u("a.com", "/");
        let b = u("b.com", "/");
        let c = u("c.com", "/");
        log.push(BrowserEvent::Redirected {
            from: a.clone(),
            to: c.clone(),
            kind: RedirectKind::Http302,
        });
        log.push(BrowserEvent::Redirected {
            from: b.clone(),
            to: c.clone(),
            kind: RedirectKind::JsLocation,
        });
        let g = BacktrackGraph::from_log(&log);
        assert_eq!(g.parent_of(&c), Some((&b, EdgeKind::Redirect(RedirectKind::JsLocation))));
    }
}
impl_json_enum!(EdgeKind {
    Redirect(RedirectKind),
    WindowOpen,
    UserClick,
    ScriptInclude,
});
impl_json_struct!(PathStep { url, via });

// The JSON shape predates URL interning and must stay stable: an object
// with URL-keyed `parent` and `scripts` maps. The symbol table is an
// in-memory representation detail, so serialization projects edges back
// onto URLs and parsing re-interns them.
impl seacma_util::json::ToJson for BacktrackGraph {
    fn to_json(&self) -> seacma_util::json::Value {
        let parent: HashMap<Url, (Url, EdgeKind)> = self
            .parent
            .iter()
            .map(|(&c, &(p, k))| (self.url(c).clone(), (self.url(p).clone(), k)))
            .collect();
        let scripts: HashMap<Url, Vec<Url>> = self
            .scripts
            .iter()
            .map(|(&d, ss)| {
                (self.url(d).clone(), ss.iter().map(|&s| self.url(s).clone()).collect())
            })
            .collect();
        seacma_util::json::Value::Obj(vec![
            ("parent".to_string(), seacma_util::json::ToJson::to_json(&parent)),
            ("scripts".to_string(), seacma_util::json::ToJson::to_json(&scripts)),
        ])
    }
}

impl seacma_util::json::FromJson for BacktrackGraph {
    fn from_json(
        v: &seacma_util::json::Value,
    ) -> Result<Self, seacma_util::json::JsonError> {
        use seacma_util::json::{FromJson, JsonError};
        if v.as_object().is_none() {
            return Err(JsonError::expected("object for BacktrackGraph", v));
        }
        let parent: HashMap<Url, (Url, EdgeKind)> = FromJson::from_json(
            v.get("parent").ok_or_else(|| JsonError::missing_field("parent"))?,
        )?;
        let scripts: HashMap<Url, Vec<Url>> = FromJson::from_json(
            v.get("scripts").ok_or_else(|| JsonError::missing_field("scripts"))?,
        )?;
        let mut g = BacktrackGraph::default();
        for (child, (par, kind)) in &parent {
            let (c, p) = (g.intern(child), g.intern(par));
            g.parent.insert(c, (p, *kind));
        }
        for (doc, srcs) in &scripts {
            let d = g.intern(doc);
            let ids = srcs.iter().map(|s| g.intern(s)).collect();
            g.scripts.insert(d, ids);
        }
        Ok(g)
    }
}
