//! Backtracking graphs over browser event logs.

use std::collections::HashMap;

use seacma_util::{impl_json_enum, impl_json_struct};

use seacma_browser::{BrowserEvent, EventLog};
use seacma_simweb::{RedirectKind, Url};

/// Causal relationship between two URLs in the ad-loading process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Child was reached by a redirect of the given kind from the parent.
    Redirect(RedirectKind),
    /// Child opened in a new tab via `window.open` on the parent.
    WindowOpen,
    /// Child was navigated to by a click on the parent.
    UserClick,
    /// Child is a script included by the parent document.
    ScriptInclude,
}

/// One step on a backward path: the URL and the edge that led *to* it from
/// its child (i.e. how the next-downstream URL was caused by this one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// URL of this node.
    pub url: Url,
    /// Edge connecting this node to the node one step downstream; `None`
    /// for the starting node.
    pub via: Option<EdgeKind>,
}

/// A causal URL graph reconstructed from one browsing session's log.
///
/// ```
/// use seacma_browser::{BrowserEvent, EventLog};
/// use seacma_graph::{milkable, BacktrackGraph};
/// use seacma_simweb::{RedirectKind, Url};
///
/// let mut log = EventLog::new();
/// let click = Url::http("srv.adnet.com", "/banners/asd.php?z=1");
/// let tds = Url::http("findglo210.info", "/go");
/// let attack = Url::http("live6nmld10.club", "/idx.php");
/// log.push(BrowserEvent::Redirected { from: click, to: tds.clone(), kind: RedirectKind::Http302 });
/// log.push(BrowserEvent::Redirected { from: tds, to: attack.clone(), kind: RedirectKind::JsSetTimeout });
///
/// let graph = BacktrackGraph::from_log(&log);
/// // The milkable candidate is the first upstream node off the attack e2LD.
/// assert_eq!(milkable::candidate(&graph, &attack).unwrap().host, "findglo210.info");
/// ```
#[derive(Debug, Clone, Default)]
pub struct BacktrackGraph {
    /// `child → (parent, kind)`; last writer wins, which matches "the most
    /// recent cause" for URLs visited repeatedly in one session.
    parent: HashMap<Url, (Url, EdgeKind)>,
    /// `document → scripts it included`.
    scripts: HashMap<Url, Vec<Url>>,
}

impl BacktrackGraph {
    /// Builds the graph from a session log.
    pub fn from_log(log: &EventLog) -> Self {
        let mut g = BacktrackGraph::default();
        for e in log.events() {
            match e {
                BrowserEvent::Redirected { from, to, kind } => {
                    g.parent.insert(to.clone(), (from.clone(), EdgeKind::Redirect(*kind)));
                }
                BrowserEvent::TabOpened { opener, url } => {
                    g.parent.insert(url.clone(), (opener.clone(), EdgeKind::WindowOpen));
                }
                BrowserEvent::NavigationStart {
                    url,
                    cause: seacma_browser::NavCause::UserClick,
                    initiator: Some(init),
                } => {
                    g.parent.insert(url.clone(), (init.clone(), EdgeKind::UserClick));
                }
                BrowserEvent::ScriptLoaded { page, src } => {
                    g.scripts.entry(page.clone()).or_default().push(src.clone());
                }
                _ => {}
            }
        }
        g
    }

    /// Number of nodes with a known parent.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the graph has no edges at all.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty() && self.scripts.is_empty()
    }

    /// Direct parent of a URL, if known.
    pub fn parent_of(&self, url: &Url) -> Option<(&Url, EdgeKind)> {
        self.parent.get(url).map(|(p, k)| (p, *k))
    }

    /// Scripts included by a document.
    pub fn scripts_of(&self, url: &Url) -> &[Url] {
        self.scripts.get(url).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The backward path from `start` to the root (the publisher page the
    /// crawler originally visited), starting node first. Cycles are broken
    /// by visited-set; the path is capped at 64 steps.
    pub fn backtrack(&self, start: &Url) -> Vec<PathStep> {
        let mut path = vec![PathStep { url: start.clone(), via: None }];
        let mut cur = start.clone();
        let mut seen = std::collections::HashSet::new();
        seen.insert(cur.clone());
        while let Some((p, k)) = self.parent_of(&cur) {
            if !seen.insert(p.clone()) || path.len() >= 64 {
                break;
            }
            path.push(PathStep { url: p.clone(), via: Some(k) });
            cur = p.clone();
        }
        path
    }

    /// Every URL involved in delivering `start`: the backward path plus all
    /// scripts included by documents on it. This is the URL set attribution
    /// scans (§3.6: "for each URL in the ad loading and landing page
    /// redirection process").
    pub fn involved_urls(&self, start: &Url) -> Vec<Url> {
        let mut out = Vec::new();
        for step in self.backtrack(start) {
            out.extend(self.scripts_of(&step.url).iter().cloned());
            out.push(step.url);
        }
        out
    }

    /// Renders the backward path from `start` in Graphviz DOT form
    /// (figure-3-style output).
    pub fn to_dot(&self, start: &Url) -> String {
        let mut s = String::from("digraph backtrack {\n  rankdir=TB;\n");
        let path = self.backtrack(start);
        for w in path.windows(2) {
            let child = &w[0];
            let parent = &w[1];
            let label = match parent.via {
                Some(EdgeKind::Redirect(k)) => format!("{k:?}"),
                Some(EdgeKind::WindowOpen) => "window.open".to_string(),
                Some(EdgeKind::UserClick) => "click".to_string(),
                Some(EdgeKind::ScriptInclude) => "script".to_string(),
                None => String::new(),
            };
            s.push_str(&format!("  \"{}\" -> \"{}\" [label=\"{}\"];\n", parent.url, child.url, label));
        }
        for step in &path {
            for script in self.scripts_of(&step.url) {
                s.push_str(&format!(
                    "  \"{}\" -> \"{}\" [label=\"script\", style=dashed];\n",
                    step.url, script
                ));
            }
        }
        s.push_str("}\n");
        s
    }

    /// Renders the backward path as indented ASCII (terminal-friendly
    /// figure 3).
    pub fn to_ascii(&self, start: &Url) -> String {
        let path = self.backtrack(start);
        let mut s = String::new();
        for (depth, step) in path.iter().rev().enumerate() {
            let indent = "  ".repeat(depth);
            let via = match step.via {
                Some(EdgeKind::Redirect(k)) => format!(" ←[{k:?}]"),
                Some(EdgeKind::WindowOpen) => " ←[window.open]".to_string(),
                Some(EdgeKind::UserClick) => " ←[click]".to_string(),
                Some(EdgeKind::ScriptInclude) => " ←[script]".to_string(),
                None => String::new(),
            };
            s.push_str(&format!("{indent}{}{via}\n", step.url));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_browser::{BrowserEvent, EventLog, NavCause};

    fn u(h: &str, p: &str) -> Url {
        Url::http(h, p)
    }

    /// A synthetic log mirroring Figure 3: publisher → (tab) click URL →
    /// (302) TDS → (JS) attack.
    fn figure3_log() -> EventLog {
        let mut log = EventLog::new();
        let publisher = u("verbeinlaliga.com", "/");
        let click = u("nsvf17p9.com", "/banners/asd.php?z=1");
        let tds = u("findglo210.info", "/go");
        let attack = u("live6nmld10.club", "/landing/idx.php");
        log.push(BrowserEvent::PageLoaded { url: publisher.clone(), title: "pub".into() });
        log.push(BrowserEvent::ScriptLoaded {
            page: publisher.clone(),
            src: u("nsvf17p9.com", "/banners/asd.php.js"),
        });
        log.push(BrowserEvent::TabOpened { opener: publisher.clone(), url: click.clone() });
        log.push(BrowserEvent::Redirected {
            from: click.clone(),
            to: tds.clone(),
            kind: RedirectKind::Http302,
        });
        log.push(BrowserEvent::Redirected {
            from: tds.clone(),
            to: attack.clone(),
            kind: RedirectKind::JsSetTimeout,
        });
        log.push(BrowserEvent::PageLoaded { url: attack, title: "scam".into() });
        log
    }

    #[test]
    fn backtrack_recovers_full_chain() {
        let g = BacktrackGraph::from_log(&figure3_log());
        let attack = u("live6nmld10.club", "/landing/idx.php");
        let path = g.backtrack(&attack);
        let hosts: Vec<&str> = path.iter().map(|s| s.url.host.as_str()).collect();
        assert_eq!(
            hosts,
            vec!["live6nmld10.club", "findglo210.info", "nsvf17p9.com", "verbeinlaliga.com"]
        );
        assert_eq!(path[1].via, Some(EdgeKind::Redirect(RedirectKind::JsSetTimeout)));
        assert_eq!(path[3].via, Some(EdgeKind::WindowOpen));
    }

    #[test]
    fn involved_urls_include_scripts() {
        let g = BacktrackGraph::from_log(&figure3_log());
        let attack = u("live6nmld10.club", "/landing/idx.php");
        let urls = g.involved_urls(&attack);
        assert!(urls.iter().any(|x| x.path.ends_with(".js")), "loader script missing");
        assert_eq!(urls.len(), 5);
    }

    #[test]
    fn user_click_edges_recorded() {
        let mut log = EventLog::new();
        let a = u("a.com", "/");
        let b = u("b.com", "/");
        log.push(BrowserEvent::NavigationStart {
            url: b.clone(),
            cause: NavCause::UserClick,
            initiator: Some(a.clone()),
        });
        let g = BacktrackGraph::from_log(&log);
        assert_eq!(g.parent_of(&b), Some((&a, EdgeKind::UserClick)));
    }

    #[test]
    fn cycles_terminate() {
        let mut log = EventLog::new();
        let a = u("a.com", "/");
        let b = u("b.com", "/");
        log.push(BrowserEvent::Redirected {
            from: a.clone(),
            to: b.clone(),
            kind: RedirectKind::Http302,
        });
        log.push(BrowserEvent::Redirected {
            from: b.clone(),
            to: a.clone(),
            kind: RedirectKind::Http302,
        });
        let g = BacktrackGraph::from_log(&log);
        let path = g.backtrack(&a);
        assert_eq!(path.len(), 2, "cycle must be cut");
    }

    #[test]
    fn unknown_start_is_singleton_path() {
        let g = BacktrackGraph::from_log(&EventLog::new());
        let path = g.backtrack(&u("nowhere.com", "/"));
        assert_eq!(path.len(), 1);
        assert!(g.is_empty());
    }

    #[test]
    fn dot_and_ascii_render() {
        let g = BacktrackGraph::from_log(&figure3_log());
        let attack = u("live6nmld10.club", "/landing/idx.php");
        let dot = g.to_dot(&attack);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("findglo210.info"));
        assert!(dot.contains("style=dashed"), "script edges must render dashed");
        let ascii = g.to_ascii(&attack);
        assert!(ascii.contains("verbeinlaliga.com"));
        assert!(ascii.lines().count() >= 4);
    }

    #[test]
    fn repeated_visits_keep_most_recent_parent() {
        let mut log = EventLog::new();
        let a = u("a.com", "/");
        let b = u("b.com", "/");
        let c = u("c.com", "/");
        log.push(BrowserEvent::Redirected {
            from: a.clone(),
            to: c.clone(),
            kind: RedirectKind::Http302,
        });
        log.push(BrowserEvent::Redirected {
            from: b.clone(),
            to: c.clone(),
            kind: RedirectKind::JsLocation,
        });
        let g = BacktrackGraph::from_log(&log);
        assert_eq!(g.parent_of(&c), Some((&b, EdgeKind::Redirect(RedirectKind::JsLocation))));
    }
}
impl_json_enum!(EdgeKind {
    Redirect(RedirectKind),
    WindowOpen,
    UserClick,
    ScriptInclude,
});
impl_json_struct!(PathStep { url, via });
impl_json_struct!(BacktrackGraph { parent, scripts });
