//! Ad-network attribution (paper §3.6).
//!
//! Each ad network reuses invariant URL/JS patterns across its rotating
//! domains (§3.1). Attribution scans every URL involved in loading an SE
//! attack — the backward path plus included scripts — for those patterns.
//! An attack matching no pattern is labelled *Unknown*; batches of unknown
//! attacks are the raw material for discovering new ad networks (the paper
//! found Ero Advertising, Yllix and AdCenter this way, §4.4).

use seacma_util::{impl_json_enum, impl_json_struct};

use seacma_simweb::Url;

use crate::backtrack::BacktrackGraph;

/// One network's invariant pattern set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkPattern {
    /// Network name.
    pub name: String,
    /// Substring that appears in every ad-serving URL of the network.
    pub url_invariant: String,
}

/// Attribution verdict for one SE attack.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Attribution {
    /// Attack delivered by a known network.
    Known(String),
    /// No pattern matched; left for manual analysis / network discovery.
    Unknown,
}

impl Attribution {
    /// The network name, if known.
    pub fn name(&self) -> Option<&str> {
        match self {
            Attribution::Known(n) => Some(n),
            Attribution::Unknown => None,
        }
    }
}

/// Matches involved-URL sets against network invariant patterns.
#[derive(Debug, Clone, Default)]
pub struct Attributor {
    patterns: Vec<NetworkPattern>,
}

impl Attributor {
    /// Builds an attributor over the given patterns.
    pub fn new(patterns: Vec<NetworkPattern>) -> Self {
        Self { patterns }
    }

    /// Registered patterns.
    pub fn patterns(&self) -> &[NetworkPattern] {
        &self.patterns
    }

    /// Adds a pattern (the new-network feedback loop: once an unknown
    /// network is identified, its invariant joins the seed set).
    pub fn add_pattern(&mut self, pattern: NetworkPattern) {
        self.patterns.push(pattern);
    }

    /// Attributes a single URL.
    pub fn match_url(&self, url: &Url) -> Option<&NetworkPattern> {
        let text = url.to_string();
        self.patterns.iter().find(|p| text.contains(&p.url_invariant))
    }

    /// Attributes an attack URL using its backtracking graph: the first
    /// matching URL on the backward path (nearest the attack) wins.
    pub fn attribute(&self, graph: &BacktrackGraph, attack: &Url) -> Attribution {
        for url in graph.involved_urls(attack) {
            if let Some(p) = self.match_url(&url) {
                return Attribution::Known(p.name.clone());
            }
        }
        Attribution::Unknown
    }

    /// Attributes a bare URL set (for callers that already flattened the
    /// graph).
    pub fn attribute_urls<'a, I>(&self, urls: I) -> Attribution
    where
        I: IntoIterator<Item = &'a Url>,
    {
        for url in urls {
            if let Some(p) = self.match_url(url) {
                return Attribution::Known(p.name.clone());
            }
        }
        Attribution::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seacma_browser::{BrowserEvent, EventLog};
    use seacma_simweb::RedirectKind;

    fn u(h: &str, p: &str) -> Url {
        Url::http(h, p)
    }

    fn attributor() -> Attributor {
        Attributor::new(vec![
            NetworkPattern { name: "AdSterra".into(), url_invariant: "/banners/asd.php".into() },
            NetworkPattern { name: "PopCash".into(), url_invariant: "/pcash/pop.js".into() },
        ])
    }

    fn attack_chain(click_path: &str) -> (BacktrackGraph, Url) {
        let mut log = EventLog::new();
        let publisher = u("pub.com", "/");
        let click = u("xyzad.net", click_path);
        let tds = u("tds.info", "/go");
        let attack = u("attack.club", "/idx.php");
        log.push(BrowserEvent::TabOpened { opener: publisher, url: click.clone() });
        log.push(BrowserEvent::Redirected {
            from: click,
            to: tds.clone(),
            kind: RedirectKind::Http302,
        });
        log.push(BrowserEvent::Redirected {
            from: tds,
            to: attack.clone(),
            kind: RedirectKind::JsSetTimeout,
        });
        (BacktrackGraph::from_log(&log), attack)
    }

    #[test]
    fn known_network_attributed_through_chain() {
        let (g, attack) = attack_chain("/banners/asd.php?z=9");
        let a = attributor().attribute(&g, &attack);
        assert_eq!(a, Attribution::Known("AdSterra".into()));
        assert_eq!(a.name(), Some("AdSterra"));
    }

    #[test]
    fn unmatched_chain_is_unknown() {
        let (g, attack) = attack_chain("/eroadv/frame.php?z=9");
        let a = attributor().attribute(&g, &attack);
        assert_eq!(a, Attribution::Unknown);
        assert_eq!(a.name(), None);
    }

    #[test]
    fn feedback_loop_adds_patterns() {
        let (g, attack) = attack_chain("/eroadv/frame.php?z=9");
        let mut at = attributor();
        assert_eq!(at.attribute(&g, &attack), Attribution::Unknown);
        at.add_pattern(NetworkPattern {
            name: "EroAdvertising".into(),
            url_invariant: "/eroadv/".into(),
        });
        assert_eq!(at.attribute(&g, &attack), Attribution::Known("EroAdvertising".into()));
    }

    #[test]
    fn script_urls_count_for_attribution() {
        let mut log = EventLog::new();
        let page = u("pub.com", "/");
        log.push(BrowserEvent::ScriptLoaded {
            page: page.clone(),
            src: u("srv.popnet.com", "/pcash/pop.js"),
        });
        let g = BacktrackGraph::from_log(&log);
        let a = attributor().attribute(&g, &page);
        assert_eq!(a, Attribution::Known("PopCash".into()));
    }

    #[test]
    fn attribute_urls_flat() {
        let at = attributor();
        let urls = [u("a.com", "/x"), u("b.com", "/pcash/pop.js")];
        assert_eq!(at.attribute_urls(urls.iter()), Attribution::Known("PopCash".into()));
        let none = [u("a.com", "/x")];
        assert_eq!(at.attribute_urls(none.iter()), Attribution::Unknown);
    }
}
impl_json_struct!(NetworkPattern { name, url_invariant });
impl_json_enum!(Attribution {
    Known(String),
    Unknown,
});
