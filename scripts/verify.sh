#!/bin/sh
# Canonical tier-1 verification: hermetic (offline) build + test.
# The workspace has no external dependencies, so --offline must succeed
# with zero registry access; if it doesn't, a crate grew a non-path dep.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline
cargo test -q --offline
# Smoke the clustering scaling bench (naive vs indexed vs parallel): the
# binary asserts all three region-query paths produce identical DBSCAN
# labels before running each bench body once, so an index regression
# fails tier-1 offline.
cargo run --release --offline -p seacma-bench --bin cluster_scaling -- --quick
# Smoke the milking scaling bench: the binary asserts the two-phase
# simulate/merge scheduler reproduces the sequential MilkingOutcome byte
# for byte at 1, 2 and 8 workers before running each bench body once, so
# a determinism regression in the parallel milker fails tier-1 offline.
cargo run --release --offline -p seacma-bench --bin milking_scaling -- --quick
