#!/bin/sh
# Canonical tier-1 verification: hermetic (offline) build + test.
# The workspace has no external dependencies, so --offline must succeed
# with zero registry access; if it doesn't, a crate grew a non-path dep.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline
cargo test -q --offline
# Smoke the scaling benches. Each binary runs an exactness gate before
# its bench bodies, so a correctness regression fails tier-1 offline:
#   cluster_scaling — naive, indexed and parallel region-query paths
#     produce identical DBSCAN labels;
#   milking_scaling — the two-phase simulate/merge scheduler reproduces
#     the sequential MilkingOutcome byte for byte at 1, 2 and 8 workers;
#   tracker_scaling — the incremental tracker snapshot equals batch
#     cluster_screenshots over the same prefix at every epoch boundary;
#   crawl_scaling — the farm's render-free fast path (shared clean-render
#     cache, deferred fused dhashes, sharded assembly) reproduces the
#     sequential full-render CrawlDataset byte for byte at 1, 2 and 8
#     workers.
for bench in cluster_scaling milking_scaling tracker_scaling crawl_scaling; do
    cargo run --release --offline -p seacma-bench --bin "$bench" -- --quick
done
