#!/bin/sh
# Canonical tier-1 verification: hermetic (offline) build + test.
# The workspace has no external dependencies, so --offline must succeed
# with zero registry access; if it doesn't, a crate grew a non-path dep.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline
cargo test -q --offline
# Smoke the scaling benches. Each binary runs an exactness gate before
# its bench bodies, so a correctness regression fails tier-1 offline:
#   cluster_scaling — naive, indexed and parallel region-query paths
#     produce identical DBSCAN labels;
#   milking_scaling — the two-phase simulate/merge scheduler reproduces
#     the sequential MilkingOutcome byte for byte at 1, 2 and 8 workers;
#   tracker_scaling — the incremental tracker snapshot equals batch
#     cluster_screenshots over the same prefix at every epoch boundary;
#   crawl_scaling — the farm's render-free fast path (shared clean-render
#     cache, deferred fused dhashes, sharded assembly) reproduces the
#     sequential full-render CrawlDataset byte for byte at 1, 2 and 8
#     workers;
#   query_scaling — the resident daemon's served answers are byte-
#     identical to the offline batch pipeline at every epoch boundary,
#     and a snapshot → resume round trip changes neither the serialized
#     state nor one answer byte;
#   detect_eval — the online detector's verdicts are byte-identical
#     across 1/2/8-worker index builds, to the linear-scan oracle, and
#     across a snapshot → resume round trip, before any timing runs.
for bench in cluster_scaling milking_scaling tracker_scaling crawl_scaling query_scaling \
             detect_eval; do
    cargo run --release --offline -p seacma-bench --bin "$bench" -- --quick
done

# End-to-end smoke + allocation-regression gate: e2e_scaling runs the
# whole pipeline (crawl → cluster → track → milk → track) at the small
# configuration with the counting allocator installed. Its own gate
# aborts unless the symbol-path tracker is byte-identical to the
# string-based reference; on top of that, each phase's allocation count
# (exact and reproducible at workers=1) must not exceed the checked-in
# baseline by more than 10%, and the summed phase wall time must stay
# under a generous sanity ceiling (the quick run takes ~0.2 s on a dev
# box; 10 s catches an accidental paper-scale config or a pathological
# slowdown without flaking on slow CI hardware).
e2e=$(mktemp)
cargo run --release --offline -p seacma-bench --features count-alloc \
    --bin e2e_scaling -- --quick --json "$e2e"
awk '
    {
        if (match($0, /"name": *"[^"]*"/)) {
            name = substr($0, RSTART, RLENGTH)
            sub(/.*: *"/, "", name); sub(/"$/, "", name)
        }
        if (FNR != NR && match($0, /"wall_ms": *[0-9.]+/)) {
            w = substr($0, RSTART, RLENGTH)
            sub(/.*: */, "", w); wall += w
        }
        if (match($0, /"allocs": *[0-9]+/)) {
            a = substr($0, RSTART, RLENGTH)
            gsub(/[^0-9]/, "", a); a += 0
            if (FNR == NR) { base[name] = a; next }
            if (!(name in base)) { printf "no alloc baseline for phase %s\n", name; bad = 1 }
            else if (a > base[name] * 1.10) {
                printf "alloc regression in %s: %d > %d +10%%\n", name, a, base[name]; bad = 1
            } else { printf "alloc gate %-14s %8d (baseline %8d) ok\n", name, a, base[name] }
        }
    }
    END {
        if (wall > 10000) { printf "e2e wall-time sanity: %.1f ms > 10000 ms\n", wall; bad = 1 }
        else { printf "e2e wall-time sanity: %.1f ms across all phases (< 10 s) ok\n", wall }
        exit bad
    }
' scripts/e2e_alloc_baseline.json "$e2e"
rm -f "$e2e"
echo "e2e smoke: symbol path byte-identical, per-phase allocs within baseline"

# Daemon end-to-end smoke: boot seacmad over the simulated measurement,
# let the epoch loop drain, query, snapshot — then resume from that
# snapshot and re-issue the same queries. The two answer transcripts
# must be byte-identical (the daemon's restart story).
snap=$(mktemp) first=$(mktemp) second=$(mktemp)
trap 'rm -f "$snap" "$first" "$second"' EXIT
queries='url http://c0-0.club/lp
dhash 00000000000000000000000000000000
detect 00000000000000000000000000000000 3 4 phone,survey
campaign 0
status'
{
    sleep 2 # every epoch (10 ms each) has closed by now
    printf '%s\n' "$queries"
    printf 'snapshot %s\nquit\n' "$snap"
} | cargo run --release --offline -p seacma-daemon --bin seacmad -- \
        --seed 42 --epoch-ms 10 2>/dev/null | grep -v '"ok"' >"$first"
printf '%s\nquit\n' "$queries" \
    | cargo run --release --offline -p seacma-daemon --bin seacmad -- \
        --seed 42 --resume "$snap" 2>/dev/null >"$second"
diff "$first" "$second"
echo "daemon smoke: resumed answers byte-identical"

# Report smoke: generate the HTML report twice from the same seeded run;
# the two files must be byte-identical (the report's determinism
# contract) and every standard analysis section must be present.
r1=$(mktemp) r2=$(mktemp)
trap 'rm -f "$snap" "$first" "$second" "$r1" "$r2"' EXIT
cargo run --release --offline -p seacma-report --bin report -- \
    --seed 42 --out "$r1" --bench-dir . 2>/dev/null
cargo run --release --offline -p seacma-report --bin report -- \
    --seed 42 --out "$r2" --bench-dir . 2>/dev/null
diff "$r1" "$r2"
for id in campaign-growth blacklist-lag adnet-attribution \
          cluster-size-distribution bench-trajectory online-detection; do
    grep -q "<section id=\"$id\">" "$r1"
done
echo "report smoke: two runs byte-identical, all 6 sections present"

# The rustdoc gate: the public API documents warning-free (intra-doc
# links resolve, seacma-report's #![deny(missing_docs)] holds).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --quiet
echo "rustdoc gate: warning-free"

# ISSUE.md is per-PR scaffolding, not part of the artifact — a checkout
# without one must still verify clean.
[ -f ISSUE.md ] || echo "note: no ISSUE.md in this checkout (fine)"
