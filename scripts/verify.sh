#!/bin/sh
# Canonical tier-1 verification: hermetic (offline) build + test.
# The workspace has no external dependencies, so --offline must succeed
# with zero registry access; if it doesn't, a crate grew a non-path dep.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline
cargo test -q --offline
